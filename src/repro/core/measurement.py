"""The typed measurement spine: windows and batches with provenance.

Every measurement the system handles -- from a benchmark execution on
one node all the way to the control plane's journal -- is a
:class:`MetricWindow`: one 1-D sample array plus the provenance the
rest of the pipeline needs to handle it correctly (node, SKU,
benchmark, metric, polarity, schema version, sanitization and
quarantine state).  A :class:`MeasurementBatch` groups the fleet's
windows for one (sku, benchmark, metric) triple, which is the unit the
distance backend scores and criteria learning consumes; the batch
constructor rejects a window from any other SKU, so cross-SKU mixing
is structurally impossible rather than merely discouraged.

Two invariants this model enforces that ad-hoc dict/array plumbing
could not:

* **Sanitization happens exactly once.**  A window that crossed the
  sanitization layer carries ``sanitized=True``; the sanitizer skips
  such windows, so a result that passes through both a runner-side and
  a pool-side sanitizer is never schema-checked (or quarantined, or
  double-counted in the telemetry ledger) twice.
* **The non-finite policy is resolved per batch, not per call.**
  :attr:`MeasurementBatch.nonfinite_policy` derives the policy from
  provenance -- fully sanitized batches can afford the strict
  ``"reject"`` policy because sanitization already removed non-finite
  values, while raw batches get the tolerant ``"mask"`` policy -- so
  no caller threads ``nonfinite=`` keyword arguments through the call
  stack (see :mod:`repro.core.backend`).

:class:`PipelineStats` is the observability seam of the spine:
lightweight per-stage counters and wall-clock timings (execute,
sanitize, score, learn) that the runner and Validator feed and the
:class:`~repro.core.system.Anubis` facade surfaces through
``pipeline_stats()`` / ``history_summary()`` and the CLI.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, defaultdict
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, replace

import numpy as np

from repro.core.ecdf import as_sample
from repro.exceptions import SkuMismatchError

__all__ = [
    "SCHEMA_VERSION",
    "NONFINITE_REJECT",
    "NONFINITE_MASK",
    "MetricWindow",
    "MeasurementBatch",
    "PipelineStats",
]

#: Version of the window/batch payload schema.  Bumped on incompatible
#: payload changes so a journal written by a future layout is detected
#: instead of silently misread.  Version history:
#:
#: * **1** -- the pre-SKU layout; replayed with ``sku="unknown"``.
#: * **2** -- windows and batches carry a ``sku`` provenance field.
SCHEMA_VERSION = 2

#: Non-finite policy: any NaN/Inf in a sample is an error.
NONFINITE_REJECT = "reject"
#: Non-finite policy: NaN/Inf values are masked out per window.
NONFINITE_MASK = "mask"


@dataclass(frozen=True, eq=False)
class MetricWindow:
    """One metric's measurement window with full provenance.

    Attributes
    ----------
    node_id, benchmark, metric:
        Where the window came from.
    sku:
        Hardware class of the producing node.  Part of the window's
        identity: criteria are namespaced per SKU and a window is only
        ever scored against its own SKU's criteria.  Windows replayed
        from pre-SKU (v1) payloads land in the ``"unknown"`` bucket.
    values:
        The raw (or, after sanitization, cleaned) 1-D sample array.
    higher_is_better:
        Metric polarity; latency-like metrics set this to ``False``.
    sanitized:
        ``True`` once the window crossed the sanitization layer with a
        schema applied.  The sanitizer never touches such a window
        again -- this flag is what makes re-sanitization a no-op.
    quarantined:
        ``True`` when sanitization decided the window supports no
        verdict (unit-scale glitch, truncated window); ``values`` then
        still holds the raw series for forensics.
    faults:
        Fault classes sanitization recorded for this window (see
        :mod:`repro.quality.sanitize`), newest provenance the verdict
        travels with.
    schema_version:
        Payload schema version, for journal round-trips.
    """

    node_id: str
    benchmark: str
    metric: str
    values: np.ndarray
    higher_is_better: bool = True
    sanitized: bool = False
    quarantined: bool = False
    faults: tuple[str, ...] = ()
    schema_version: int = SCHEMA_VERSION
    sku: str = "unknown"

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=float).ravel()
        object.__setattr__(self, "values", arr)
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def n(self) -> int:
        """Number of values in the window."""
        return int(self.values.size)

    def sample(self) -> np.ndarray:
        """The window as a validated sample (strict policy).

        Raises :class:`~repro.exceptions.InvalidSampleError` on an
        empty window or any non-finite value -- the online filter
        treats both as execution failures.
        """
        return as_sample(self.values)

    def with_values(self, values: object) -> "MetricWindow":
        """Same provenance, new values (window slicing, fault injection)."""
        return replace(self, values=np.asarray(values, dtype=float).ravel())

    def mark_sanitized(self, *, values: object | None = None,
                       quarantined: bool = False,
                       faults: tuple[str, ...] = ()) -> "MetricWindow":
        """The window after one sanitization crossing.

        ``values`` replaces the series (cleaned survivors) unless the
        window was quarantined, in which case the raw series stays for
        forensics.
        """
        new_values = self.values if values is None else values
        return replace(
            self,
            values=np.asarray(new_values, dtype=float).ravel(),
            sanitized=True,
            quarantined=bool(quarantined),
            faults=self.faults + tuple(faults),
        )

    def to_payload(self) -> dict:
        """Plain-JSON-types payload (journal serialization)."""
        return {
            "schema_version": self.schema_version,
            "node_id": self.node_id,
            "sku": self.sku,
            "benchmark": self.benchmark,
            "metric": self.metric,
            "values": [float(v) for v in self.values],
            "higher_is_better": self.higher_is_better,
            "sanitized": self.sanitized,
            "quarantined": self.quarantined,
            "faults": list(self.faults),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MetricWindow":
        """Rebuild a window from :meth:`to_payload` output.

        Raises ``ValueError`` on malformed payloads or an unknown
        schema version, so journal replay can skip (not misread) them.
        Pre-SKU (v1) payloads load with ``sku="unknown"`` -- the
        legacy bucket every per-SKU consumer renders explicitly.
        """
        try:
            version = int(payload.get("schema_version", SCHEMA_VERSION))
            if version > SCHEMA_VERSION:
                raise ValueError(
                    f"window payload schema version {version} is newer "
                    f"than supported version {SCHEMA_VERSION}")
            return cls(
                node_id=str(payload["node_id"]),
                sku=str(payload.get("sku", "unknown")),
                benchmark=str(payload["benchmark"]),
                metric=str(payload["metric"]),
                values=np.asarray(payload["values"], dtype=float),
                higher_is_better=bool(payload["higher_is_better"]),
                sanitized=bool(payload["sanitized"]),
                quarantined=bool(payload["quarantined"]),
                faults=tuple(str(f) for f in payload.get("faults", [])),
                schema_version=version,
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed window payload: {error}") from error


@dataclass(frozen=True, eq=False)
class MeasurementBatch:
    """The fleet's windows for one (sku, benchmark, metric) triple.

    This is the unit the distance backend scores in one kernel call
    and criteria learning consumes; the batch-level provenance
    (SKU, polarity, sanitization state) is what lets the non-finite
    policy be resolved once here instead of threaded through the call
    stack.  SKU homogeneity is enforced structurally: a window from
    any other hardware class raises
    :class:`~repro.exceptions.SkuMismatchError` at construction, so a
    batch can never silently mix classes whose "normal" levels differ.
    """

    benchmark: str
    metric: str
    windows: tuple[MetricWindow, ...]
    higher_is_better: bool = True
    schema_version: int = SCHEMA_VERSION
    sku: str = "unknown"

    def __post_init__(self) -> None:
        object.__setattr__(self, "windows", tuple(self.windows))
        for window in self.windows:
            if (window.benchmark != self.benchmark
                    or window.metric != self.metric):
                raise ValueError(
                    f"window for {window.benchmark}/{window.metric} does "
                    f"not belong in a {self.benchmark}/{self.metric} batch")
            if window.sku != self.sku:
                raise SkuMismatchError(
                    f"window from node {window.node_id!r} carries SKU "
                    f"{window.sku!r} and does not belong in a {self.sku!r} "
                    f"batch for {self.benchmark}/{self.metric}")

    @classmethod
    def from_results(cls, results: Iterable[object], *, benchmark: str,
                     metric: str, higher_is_better: bool = True,
                     sku: str | None = None) -> "MeasurementBatch":
        """Collect one metric's windows from many benchmark results.

        ``results`` yields :class:`~repro.benchsuite.base.
        BenchmarkResult`-like objects; results missing the metric are
        skipped (the Validator separately flags them as execution
        failures with the index bookkeeping it needs).  ``sku=None``
        adopts the first collected window's SKU; the constructor's
        homogeneity check then rejects any stray window from another
        class.
        """
        windows: list[MetricWindow] = []
        for result in results:
            try:
                window = result.window(metric)  # type: ignore[attr-defined]
            except (AttributeError, KeyError):
                continue
            windows.append(window)
        if sku is None:
            sku = windows[0].sku if windows else "unknown"
        return cls(benchmark=benchmark, metric=metric,
                   windows=tuple(windows),
                   higher_is_better=higher_is_better, sku=sku)

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def node_ids(self) -> tuple[str, ...]:
        """Node ids in window order."""
        return tuple(window.node_id for window in self.windows)

    @property
    def sanitized(self) -> bool:
        """True when every window crossed the sanitization layer."""
        return bool(self.windows) and all(w.sanitized for w in self.windows)

    @property
    def quarantined_nodes(self) -> tuple[str, ...]:
        """Node ids whose window supports no verdict."""
        return tuple(w.node_id for w in self.windows if w.quarantined)

    @property
    def nonfinite_policy(self) -> str:
        """The batch's resolved non-finite policy.

        Fully sanitized batches use :data:`NONFINITE_REJECT` --
        sanitization already removed non-finite values, so anything
        left is a pipeline bug worth failing loudly on.  Batches with
        raw windows use :data:`NONFINITE_MASK` so one stray NaN cannot
        abort a fleet-wide operation.
        """
        return NONFINITE_REJECT if self.sanitized else NONFINITE_MASK

    def scoreable(self) -> tuple[MetricWindow, ...]:
        """Windows that support a verdict (not quarantined)."""
        return tuple(w for w in self.windows if not w.quarantined)

    def samples(self) -> list[np.ndarray]:
        """Raw value arrays of the scoreable windows, in order."""
        return [w.values for w in self.scoreable()]

    def to_payload(self) -> dict:
        """Plain-JSON-types payload (journal serialization)."""
        return {
            "schema_version": self.schema_version,
            "sku": self.sku,
            "benchmark": self.benchmark,
            "metric": self.metric,
            "higher_is_better": self.higher_is_better,
            "windows": [window.to_payload() for window in self.windows],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MeasurementBatch":
        """Rebuild a batch (and all window provenance) from its payload.

        Pre-SKU (v1) payloads replay into the ``"unknown"`` bucket,
        which their windows default to as well -- the homogeneity
        check holds across the migration.
        """
        try:
            version = int(payload.get("schema_version", SCHEMA_VERSION))
            if version > SCHEMA_VERSION:
                raise ValueError(
                    f"batch payload schema version {version} is newer "
                    f"than supported version {SCHEMA_VERSION}")
            return cls(
                benchmark=str(payload["benchmark"]),
                metric=str(payload["metric"]),
                windows=tuple(MetricWindow.from_payload(w)
                              for w in payload["windows"]),
                higher_is_better=bool(payload["higher_is_better"]),
                schema_version=version,
                sku=str(payload.get("sku", "unknown")),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed batch payload: {error}") from error


class PipelineStats:
    """Thread-safe per-stage counters and timings for the spine.

    Stages are free-form strings; the conventional ones are
    ``"execute"``, ``"sanitize"``, ``"score"`` and ``"learn"``.  One
    instance can serve a whole parallel sweep (the runner is shared by
    pool worker threads).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Counter[str] = Counter()
        self._seconds: defaultdict[str, float] = defaultdict(float)

    def record(self, stage: str, *, count: int = 1,
               seconds: float = 0.0) -> None:
        """Fold one observation into a stage's counters."""
        with self._lock:
            self._counts[stage] += int(count)
            self._seconds[stage] += float(seconds)

    @contextmanager
    def timed(self, stage: str) -> Iterator[None]:
        """Context manager recording one timed pass through a stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(stage, seconds=time.perf_counter() - start)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Stage name -> ``{"count": n, "seconds": s}``, sorted by stage."""
        with self._lock:
            return {
                stage: {"count": float(self._counts[stage]),
                        "seconds": self._seconds[stage]}
                for stage in sorted(self._counts)
            }

    def merge(self, other: "PipelineStats | None") -> "PipelineStats":
        """New stats combining this instance with ``other`` (if any)."""
        merged = PipelineStats()
        for source in (self, other):
            if source is None:
                continue
            for stage, entry in source.snapshot().items():
                merged.record(stage, count=int(entry["count"]),
                              seconds=entry["seconds"])
        return merged
