"""Benchmark criteria learning (paper §3.4, Algorithm 2).

Given one benchmark's result samples from many nodes, the Validator
learns a *criteria* sample ``S_C`` such that every non-defective sample
satisfies ``similarity(S_C, S_i) > alpha``.  The algorithm is a
similarity-based clustering: pick the medoid (the sample maximizing the
sum of pairwise similarities), exclude everything below the threshold,
re-pick the medoid among the survivors, and iterate until the surviving
set is self-consistent.

Two centroid strategies are supported, mirroring the remark in the
paper's pseudo-code:

* ``"medoid"`` -- the sample with maximal total similarity (default).
* ``"mean"``   -- the mean in distribution space, realized by pooling
  the surviving samples (the ECDF of the pooled sample is the average
  of the member ECDFs when samples have equal length).
* ``"hybrid"`` -- iterate with the medoid (robust to defective
  samples polluting a pooled mixture), then return the pool of the
  surviving healthy samples as the criteria.  The pooled criteria has
  a much smoother empirical CDF than any single run, which keeps the
  one-sided online filter's left tail quiet; this is the Validator's
  default.

Dirty-telemetry robustness
--------------------------
Criteria are learned *without ground truth*, so corrupted telemetry
flows straight into the learned boundary unless it is contained here:

* a masking backend (``backend=get_backend(NONFINITE_MASK)``)
  quarantines NaN/Inf values per window instead of
  aborting the whole fleet-wide learn, and windows left below
  ``min_sample_size`` clean values are excluded from learning (reported
  via :attr:`CriteriaResult.excluded_indices`) with a warning;
* ``contamination`` is a budget for *distribution-shape* poison that
  pointwise checks cannot catch (duplicated samples, subtle scale
  glitches): the medoid is chosen by a **trimmed** similarity
  aggregation that drops each candidate's ``floor(contamination *
  (k - 1))`` smallest similarities.  Up to that many poisoned windows
  can therefore neither drag an honest candidate's score down nor lift
  a poisoned candidate into the medoid seat -- the documented
  breakdown point of the seeding step.  The subsequent alpha-exclusion
  loop then removes the poisoned windows from the surviving pool the
  same way it removes defective nodes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.backend import DistanceBackend, default_backend
from repro.core.measurement import NONFINITE_REJECT
from repro.exceptions import CriteriaError

__all__ = ["CriteriaResult", "learn_criteria", "medoid_index"]

_MAX_ITERATIONS = 64


@dataclass(frozen=True)
class CriteriaResult:
    """Outcome of offline criteria learning for one benchmark metric.

    Attributes
    ----------
    criteria:
        The learned criteria sample ``S_C`` (a 1-D array).
    defect_indices:
        Indices (into the input sample list) excluded as defective.
    healthy_indices:
        Indices that survived learning (complement of the defective
        and excluded sets).
    centroid_index:
        Index of the medoid sample, or ``None`` when the ``"mean"``
        centroid (a pooled synthetic sample) was used.
    iterations:
        Number of exclude/re-center rounds performed.
    alpha:
        The similarity threshold the criteria was learned against.
    excluded_indices:
        Indices quarantined *before* learning as unusable telemetry
        (all-non-finite windows or windows below the sample floor
        under ``nonfinite="mask"``).  Distinct from ``defect_indices``:
        exclusion is a data-quality verdict, not a hardware verdict.
    """

    criteria: np.ndarray
    defect_indices: tuple[int, ...]
    healthy_indices: tuple[int, ...]
    centroid_index: int | None
    iterations: int
    alpha: float
    similarities: tuple[float, ...] = field(default=())
    excluded_indices: tuple[int, ...] = field(default=())

    @property
    def defect_ratio(self) -> float:
        """Fraction of learnable samples excluded as defective."""
        total = len(self.defect_indices) + len(self.healthy_indices)
        return len(self.defect_indices) / total if total else 0.0


def medoid_index(sim_matrix: np.ndarray, active: np.ndarray, *,
                 trim_fraction: float = 0.0) -> int:
    """Index (into the full sample list) of the medoid among ``active``.

    The medoid maximizes the row-sum of pairwise similarities restricted
    to the active subset -- the ``GetCentroid`` helper of Algorithm 2.

    With ``trim_fraction > 0`` each candidate's ``floor(trim_fraction *
    (k - 1))`` smallest similarities are dropped before summing
    (trimmed aggregation).  A poisoned window has low similarity to
    every honest window, so honest candidates shed the poison from
    their scores while poisoned candidates -- whose whole row is low --
    cannot be lifted into the argmax by trimming their own tail.
    """
    if active.size == 0:
        raise CriteriaError("cannot take the medoid of an empty sample set")
    sub = sim_matrix[np.ix_(active, active)]
    k = int(active.size)
    trim = int(np.floor(trim_fraction * (k - 1))) if k > 1 else 0
    if trim > 0:
        sub = np.sort(sub, axis=1)[:, trim:]
    return int(active[int(np.argmax(sub.sum(axis=1)))])


def _pooled_sample(samples, active: np.ndarray) -> np.ndarray:
    """Mean-in-distribution-space centroid: pool the active samples."""
    return np.sort(
        np.concatenate([np.asarray(samples[i], dtype=float) for i in active]))


def _clean_samples(samples, backend: DistanceBackend, min_sample_size: int):
    """Per-window quarantine pass before learning.

    Returns ``(cleaned, kept, masked_values, excluded)``: sorted clean
    arrays, their original indices, how many non-finite values were
    masked away, and the original indices of windows excluded outright.
    Under the backend's ``"reject"`` policy any non-finite value raises
    (legacy strictness); under ``"mask"`` values are dropped per window
    and only windows with fewer than ``min_sample_size`` clean values
    are excluded.

    A uniform 2-D float array with no non-finite entries takes a fully
    vectorized fast path (one ``np.sort(axis=1)``), which is what keeps
    fleet-scale cleaning out of Python loops in the incremental engine.
    """
    floor = max(min_sample_size, 1)
    if (isinstance(samples, np.ndarray) and samples.ndim == 2
            and samples.shape[1] >= floor and samples.size):
        data = np.asarray(samples, dtype=float)
        if np.isfinite(data).all():
            cleaned = list(np.sort(data, axis=1))
            return cleaned, list(range(data.shape[0])), 0, []
    cleaned, kept, excluded = [], [], []
    masked_values = 0
    for index, sample in enumerate(samples):
        arr = np.asarray(sample, dtype=float).ravel()
        if backend.nonfinite == NONFINITE_REJECT:
            finite = backend.clean(arr)  # raises on empty or non-finite
        else:
            finite = arr[np.isfinite(arr)]
            masked_values += int(arr.size - finite.size)
        if finite.size < floor:
            excluded.append(index)
            continue
        kept.append(index)
        cleaned.append(np.sort(finite))
    return cleaned, kept, masked_values, excluded


def _validate_learn_args(samples, alpha: float, centroid: str,
                         contamination: float) -> None:
    """Shared argument validation for the exact and incremental learners."""
    if not 0.0 <= alpha < 1.0:
        raise CriteriaError(f"alpha must be in [0, 1), got {alpha}")
    if centroid not in ("medoid", "mean", "hybrid"):
        raise CriteriaError(f"unknown centroid strategy {centroid!r}")
    if not 0.0 <= contamination < 0.5:
        raise CriteriaError(
            f"contamination must be in [0, 0.5), got {contamination}")
    if len(samples) == 0:
        raise CriteriaError("criteria learning needs at least one sample")


def _clean_and_warn(samples, backend: DistanceBackend, min_sample_size: int,
                    *, stacklevel: int = 3):
    """:func:`_clean_samples` plus the quarantine warning at the caller.

    ``stacklevel=3`` points the warning at whoever called the learner
    (helper -> learner -> caller); both the exact and the incremental
    entry points route through here so excluded-window diagnostics
    always name the call site, never this module.
    """
    cleaned, kept, masked_values, excluded = _clean_samples(
        samples, backend, min_sample_size)
    if masked_values or excluded:
        warnings.warn(
            f"criteria learning quarantined {masked_values} non-finite "
            f"value(s) and excluded {len(excluded)} of {len(samples)} "
            f"window(s) as unusable telemetry",
            RuntimeWarning, stacklevel=stacklevel)
    if not cleaned:
        raise CriteriaError(
            "criteria learning excluded every window as unusable telemetry")
    return cleaned, kept, excluded


def learn_criteria(samples, alpha: float = 0.95, *,
                   centroid: str = "medoid",
                   contamination: float = 0.0,
                   backend: DistanceBackend | None = None,
                   min_sample_size: int = 1) -> CriteriaResult:
    """Run Algorithm 2 on ``samples`` and return the learned criteria.

    Parameters
    ----------
    samples:
        Sequence of 1-D benchmark samples, one per node (or per run).
    alpha:
        Empirical similarity threshold; samples with
        ``similarity(S_C, S_i) <= alpha`` are excluded as defects.
    centroid:
        ``"medoid"``, ``"mean"`` or ``"hybrid"`` (see module docstring).
    contamination:
        Budget (fraction in ``[0, 0.5)``) of poisoned windows the
        medoid seeding must tolerate; realized as trimmed similarity
        aggregation in :func:`medoid_index`.
    backend:
        The :class:`~repro.core.backend.DistanceBackend` to learn
        with; defaults to the strict (``"reject"``) dispatch backend,
        which raises on any non-finite value.  A ``"mask"`` backend
        (``get_backend(NONFINITE_MASK)``) quarantines non-finite
        values per window and excludes -- with a warning -- windows
        left below ``min_sample_size``, instead of aborting the
        fleet-wide learn.
    min_sample_size:
        Minimum clean values a window needs to participate in learning
        (only meaningful under a masking backend; short windows are
        excluded, never fatal).

    Raises
    ------
    CriteriaError
        If no learnable sample remains, if ``alpha`` or
        ``contamination`` is out of range, or if the exclusion loop
        would discard every sample.
    """
    _validate_learn_args(samples, alpha, centroid, contamination)
    backend = backend or default_backend()

    cleaned, kept, excluded = _clean_and_warn(
        samples, backend, min_sample_size, stacklevel=3)
    kept_arr = np.asarray(kept, dtype=np.intp)
    n = len(cleaned)

    # One validated, sorted batch backs every similarity evaluation of
    # the run: the full pairwise matrix and each iteration's pooled
    # re-scoring (previously a fresh Python loop per iteration).
    batch = backend.prepare(cleaned, assume_sorted=True)
    sim_matrix = backend.pairwise_similarities(batch)
    all_indices = np.arange(n)
    iteration_centroid = "medoid" if centroid == "hybrid" else centroid

    def centroid_of(active: np.ndarray) -> tuple[np.ndarray, int | None]:
        if iteration_centroid == "medoid":
            idx = medoid_index(sim_matrix, active,
                               trim_fraction=contamination)
            return cleaned[idx], idx
        return _pooled_sample(cleaned, active), None

    def sims_to(criteria_sample: np.ndarray, criteria_idx: int | None) -> np.ndarray:
        if criteria_idx is not None:
            return sim_matrix[criteria_idx]
        # _pooled_sample returns sorted output, so the reference ECDF
        # can be used as-is.
        return backend.one_vs_many_similarities(batch, criteria_sample,
                                                assume_sorted=True)

    active = all_indices
    criteria_sample, criteria_idx = centroid_of(active)
    seen_states: set[tuple] = set()
    iterations = 0
    sims = sims_to(criteria_sample, criteria_idx)

    # Algorithm 2 main loop: exclude below-threshold samples relative to
    # the current centroid, then re-center on the survivors.  A seen-set
    # guards against the (rare) oscillation between two fixed points.
    while iterations < _MAX_ITERATIONS:
        defective = all_indices[sims <= alpha]
        surviving = all_indices[sims > alpha]
        if surviving.size == 0:
            raise CriteriaError(
                "criteria learning excluded every sample; "
                f"alpha={alpha} is too strict for this benchmark's variance"
            )
        state = (criteria_idx, tuple(defective.tolist()))
        if np.array_equal(surviving, active) or state in seen_states:
            active = surviving
            break
        seen_states.add(state)
        active = surviving
        criteria_sample, criteria_idx = centroid_of(active)
        sims = sims_to(criteria_sample, criteria_idx)
        iterations += 1

    active_set = set(active.tolist())
    defect_indices = tuple(int(kept_arr[i]) for i in all_indices
                           if i not in active_set)
    healthy_indices = tuple(int(kept_arr[i]) for i in active.tolist())
    if centroid == "hybrid":
        criteria_sample = _pooled_sample(cleaned, active)
        criteria_idx = None
    # Similarities map back to the *input* index space; excluded
    # windows were never scored and report 0.0 (maximally dissimilar).
    full_sims = np.zeros(len(samples))
    full_sims[kept_arr] = sims
    return CriteriaResult(
        criteria=criteria_sample,
        defect_indices=defect_indices,
        healthy_indices=healthy_indices,
        centroid_index=(int(kept_arr[criteria_idx])
                        if criteria_idx is not None else None),
        iterations=iterations,
        alpha=alpha,
        similarities=tuple(float(s) for s in full_sims),
        excluded_indices=tuple(int(i) for i in excluded),
    )
