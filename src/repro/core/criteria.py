"""Benchmark criteria learning (paper §3.4, Algorithm 2).

Given one benchmark's result samples from many nodes, the Validator
learns a *criteria* sample ``S_C`` such that every non-defective sample
satisfies ``similarity(S_C, S_i) > alpha``.  The algorithm is a
similarity-based clustering: pick the medoid (the sample maximizing the
sum of pairwise similarities), exclude everything below the threshold,
re-pick the medoid among the survivors, and iterate until the surviving
set is self-consistent.

Two centroid strategies are supported, mirroring the remark in the
paper's pseudo-code:

* ``"medoid"`` -- the sample with maximal total similarity (default).
* ``"mean"``   -- the mean in distribution space, realized by pooling
  the surviving samples (the ECDF of the pooled sample is the average
  of the member ECDFs when samples have equal length).
* ``"hybrid"`` -- iterate with the medoid (robust to defective
  samples polluting a pooled mixture), then return the pool of the
  surviving healthy samples as the criteria.  The pooled criteria has
  a much smoother empirical CDF than any single run, which keeps the
  one-sided online filter's left tail quiet; this is the Validator's
  default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fastdist import (
    SortedSampleBatch,
    one_vs_many_similarities,
    pairwise_similarities,
)
from repro.exceptions import CriteriaError

__all__ = ["CriteriaResult", "learn_criteria", "medoid_index"]

_MAX_ITERATIONS = 64


@dataclass(frozen=True)
class CriteriaResult:
    """Outcome of offline criteria learning for one benchmark metric.

    Attributes
    ----------
    criteria:
        The learned criteria sample ``S_C`` (a 1-D array).
    defect_indices:
        Indices (into the input sample list) excluded as defective.
    healthy_indices:
        The complement of ``defect_indices``.
    centroid_index:
        Index of the medoid sample, or ``None`` when the ``"mean"``
        centroid (a pooled synthetic sample) was used.
    iterations:
        Number of exclude/re-center rounds performed.
    alpha:
        The similarity threshold the criteria was learned against.
    """

    criteria: np.ndarray
    defect_indices: tuple[int, ...]
    healthy_indices: tuple[int, ...]
    centroid_index: int | None
    iterations: int
    alpha: float
    similarities: tuple[float, ...] = field(default=())

    @property
    def defect_ratio(self) -> float:
        """Fraction of input samples excluded as defective."""
        total = len(self.defect_indices) + len(self.healthy_indices)
        return len(self.defect_indices) / total if total else 0.0


def medoid_index(sim_matrix: np.ndarray, active: np.ndarray) -> int:
    """Index (into the full sample list) of the medoid among ``active``.

    The medoid maximizes the row-sum of pairwise similarities restricted
    to the active subset -- the ``GetCentroid`` helper of Algorithm 2.
    """
    if active.size == 0:
        raise CriteriaError("cannot take the medoid of an empty sample set")
    sub = sim_matrix[np.ix_(active, active)]
    return int(active[int(np.argmax(sub.sum(axis=1)))])


def _pooled_sample(samples, active: np.ndarray) -> np.ndarray:
    """Mean-in-distribution-space centroid: pool the active samples."""
    return np.sort(
        np.concatenate([np.asarray(samples[i], dtype=float) for i in active]))


def learn_criteria(samples, alpha: float = 0.95, *,
                   centroid: str = "medoid") -> CriteriaResult:
    """Run Algorithm 2 on ``samples`` and return the learned criteria.

    Parameters
    ----------
    samples:
        Sequence of 1-D benchmark samples, one per node (or per run).
    alpha:
        Empirical similarity threshold; samples with
        ``similarity(S_C, S_i) <= alpha`` are excluded as defects.
    centroid:
        ``"medoid"`` or ``"mean"`` (see module docstring).

    Raises
    ------
    CriteriaError
        If fewer than one sample is given, if ``alpha`` is outside
        ``[0, 1)``, or if the exclusion loop would discard every sample.
    """
    if not 0.0 <= alpha < 1.0:
        raise CriteriaError(f"alpha must be in [0, 1), got {alpha}")
    if centroid not in ("medoid", "mean", "hybrid"):
        raise CriteriaError(f"unknown centroid strategy {centroid!r}")
    n = len(samples)
    if n == 0:
        raise CriteriaError("criteria learning needs at least one sample")

    # One validated, sorted batch backs every similarity evaluation of
    # the run: the full pairwise matrix and each iteration's pooled
    # re-scoring (previously a fresh Python loop per iteration).
    batch = SortedSampleBatch.from_samples(samples)
    sim_matrix = pairwise_similarities(batch)
    np.fill_diagonal(sim_matrix, 1.0)
    all_indices = np.arange(n)
    iteration_centroid = "medoid" if centroid == "hybrid" else centroid

    def centroid_of(active: np.ndarray) -> tuple[np.ndarray, int | None]:
        if iteration_centroid == "medoid":
            idx = medoid_index(sim_matrix, active)
            return np.sort(np.asarray(samples[idx], dtype=float)), idx
        return _pooled_sample(samples, active), None

    def sims_to(criteria_sample: np.ndarray, criteria_idx: int | None) -> np.ndarray:
        if criteria_idx is not None:
            return sim_matrix[criteria_idx]
        # _pooled_sample returns sorted output, so the reference ECDF
        # can be used as-is.
        return one_vs_many_similarities(batch, criteria_sample,
                                        assume_sorted=True)

    active = all_indices
    criteria_sample, criteria_idx = centroid_of(active)
    seen_states: set[tuple] = set()
    iterations = 0
    sims = sims_to(criteria_sample, criteria_idx)

    # Algorithm 2 main loop: exclude below-threshold samples relative to
    # the current centroid, then re-center on the survivors.  A seen-set
    # guards against the (rare) oscillation between two fixed points.
    while iterations < _MAX_ITERATIONS:
        defective = all_indices[sims <= alpha]
        surviving = all_indices[sims > alpha]
        if surviving.size == 0:
            raise CriteriaError(
                "criteria learning excluded every sample; "
                f"alpha={alpha} is too strict for this benchmark's variance"
            )
        state = (criteria_idx, tuple(defective.tolist()))
        if np.array_equal(surviving, active) or state in seen_states:
            active = surviving
            break
        seen_states.add(state)
        active = surviving
        criteria_sample, criteria_idx = centroid_of(active)
        sims = sims_to(criteria_sample, criteria_idx)
        iterations += 1

    defect_indices = tuple(int(i) for i in all_indices if i not in set(active.tolist()))
    healthy_indices = tuple(int(i) for i in active.tolist())
    if centroid == "hybrid":
        criteria_sample = _pooled_sample(samples, active)
        criteria_idx = None
    return CriteriaResult(
        criteria=criteria_sample,
        defect_indices=defect_indices,
        healthy_indices=healthy_indices,
        centroid_index=criteria_idx,
        iterations=iterations,
        alpha=alpha,
        similarities=tuple(float(s) for s in sims),
    )
