"""Repeatability metrics (paper §3.4, "Repeatability").

The paper defines *repeatability* as "the arithmetic mean of pairwise
similarities from N different nodes or runs".  A benchmark whose
repeatability falls below the similarity threshold ``alpha`` cannot be
used for validation because natural variance would be indistinguishable
from defects.

Two estimators are provided:

* :func:`pairwise_repeatability` -- the definition above.
* :func:`criteria_repeatability` -- the variant used in the paper's
  Table 5 / Table 6 evaluation: the mean similarity between each sample
  and the learned criteria.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import DistanceBackend, default_backend
from repro.exceptions import InvalidSampleError

__all__ = ["pairwise_repeatability", "criteria_repeatability"]


def pairwise_repeatability(samples, *,
                           backend: DistanceBackend | None = None) -> float:
    """Arithmetic mean of all pairwise similarities among ``samples``.

    Needs at least two samples; the diagonal (self-similarity) is
    excluded so a perfectly repeatable benchmark scores exactly 1.0.
    """
    n = len(samples)
    if n < 2:
        raise InvalidSampleError("repeatability needs at least two samples")
    backend = backend or default_backend()
    sims = backend.pairwise_similarities(samples)
    off_diagonal_sum = float(sims.sum() - np.trace(sims))
    return off_diagonal_sum / (n * (n - 1))


def criteria_repeatability(samples, criteria, *,
                           backend: DistanceBackend | None = None) -> float:
    """Mean similarity between each sample and a fixed criteria sample."""
    if len(samples) == 0:
        raise InvalidSampleError("repeatability needs at least one sample")
    backend = backend or default_backend()
    return float(np.mean(backend.one_vs_many_similarities(samples, criteria)))
