"""The scalar Eq. (2)--(4) reference oracle.

This module is the auditable, paper-faithful definition of the
distance math and nothing more.  Production code routes every distance
through :mod:`repro.core.backend` (the sole production importer of
this module); the property suite under ``tests/property/`` compares
the vectorized kernels against these functions, which is why they stay
scalar, short, and dependency-free.

Implements Equations (2)--(4) of the paper:

* :func:`cdf_distance` -- Eq. (2), the absolute integral of the relative
  gap between two empirical CDFs.
* :func:`similarity` -- Eq. (3), ``1 - d``.
* :func:`one_sided_distance` / :func:`one_sided_similarity` -- Eq. (4),
  the filtering distance that only penalizes the *worse* direction
  (lower throughput or higher latency).

Normalization
-------------
Eq. (2) integrates ``|F1(x) - F2(x)| / max(F1(x), F2(x))`` over the
metric axis, which is not inherently bounded.  The paper states the
distance is "normalized to the [0, 1] range"; we realize that by
integrating over ``[lo, hi]`` -- where ``lo = min(0, smallest
observation)`` and ``hi`` is the largest observation across both
samples -- and dividing by ``hi - lo``.  The integrand is always in
``[0, 1]`` and vanishes outside the union support, so the result is in
``[0, 1]``, scale-invariant, and degenerates to the *relative
regression* for single-value samples: a node measuring ``90`` against a
criteria of ``100`` gets ``d = 0.1`` and similarity ``0.9``.

Metric polarity
---------------
For throughput-like metrics (higher is better) a defective node's CDF
sits *left* of (above) the criteria CDF, so the one-sided numerator is
``max(0, F_obs - F_ref)``.  For latency-like metrics the defect shifts
the CDF right, and the numerator flips to ``max(0, F_ref - F_obs)``
(the paper's "elsewise replace max with min").  Pass
``higher_is_better=False`` for the latter.
"""

from __future__ import annotations

import numpy as np

from repro.core.ecdf import as_sample

__all__ = [
    "cdf_distance",
    "similarity",
    "one_sided_distance",
    "one_sided_similarity",
    "pairwise_similarity_matrix_reference",
]


def _cdf_gap_integral(sample_a, sample_b, *, signed_direction: int,
                      assume_sorted: bool = False) -> float:
    """Shared integration core for Eq. (2) and Eq. (4).

    ``signed_direction`` selects the numerator:

    * ``0``  -> ``|F_a - F_b|``            (symmetric, Eq. 2)
    * ``+1`` -> ``max(0, F_a - F_b)``      (penalize ``a`` left of ``b``)
    * ``-1`` -> ``max(0, F_b - F_a)``      (penalize ``a`` right of ``b``)

    ``assume_sorted`` skips the validation/sort for callers that
    already hold sorted samples (batch loops used to re-sort every
    pair).
    """
    if assume_sorted:
        a = np.asarray(sample_a, dtype=float)
        b = np.asarray(sample_b, dtype=float)
    else:
        a = np.sort(as_sample(sample_a))
        b = np.sort(as_sample(sample_b))

    # Breakpoints of the piecewise-constant CDFs.
    xs = np.union1d(a, b)
    if xs.size == 1:
        return 0.0  # identical degenerate samples

    fa = np.searchsorted(a, xs, side="right") / a.size
    fb = np.searchsorted(b, xs, side="right") / b.size

    # On the half-open interval [xs[i], xs[i+1]) both CDFs are constant
    # at their value in xs[i].
    widths = np.diff(xs)
    fa, fb = fa[:-1], fb[:-1]
    denom = np.maximum(fa, fb)

    if signed_direction == 0:
        numer = np.abs(fa - fb)
    elif signed_direction > 0:
        numer = np.maximum(0.0, fa - fb)
    else:
        numer = np.maximum(0.0, fb - fa)

    with np.errstate(divide="ignore", invalid="ignore"):
        integrand = np.where(denom > 0.0, numer / denom, 0.0)
    integral = float(np.dot(integrand, widths))

    lo = min(0.0, float(xs[0]))
    hi = float(xs[-1])
    span = hi - lo
    if span <= 0.0:
        # All observations identical and non-positive; the CDFs coincide.
        return 0.0
    return min(1.0, integral / span)


def cdf_distance(sample_a, sample_b) -> float:
    """Eq. (2): normalized absolute integral gap between two ECDFs.

    Symmetric, in ``[0, 1]``, and zero iff the two empirical
    distributions coincide.
    """
    return _cdf_gap_integral(sample_a, sample_b, signed_direction=0)


def similarity(sample_a, sample_b) -> float:
    """Eq. (3): ``1 - cdf_distance``."""
    return 1.0 - cdf_distance(sample_a, sample_b)


def one_sided_distance(observed, reference, *, higher_is_better: bool = True) -> float:
    """Eq. (4): distance that only counts under-performance.

    ``observed`` is the runtime sample, ``reference`` the offline
    criteria.  The result is at most :func:`cdf_distance` of the same
    pair, and zero when the observed sample is at least as good as the
    reference everywhere.
    """
    direction = +1 if higher_is_better else -1
    return _cdf_gap_integral(observed, reference, signed_direction=direction)


def one_sided_similarity(observed, reference, *,
                         higher_is_better: bool = True) -> float:
    """``1 - one_sided_distance``; compared against the threshold alpha."""
    return 1.0 - one_sided_distance(observed, reference,
                                    higher_is_better=higher_is_better)


def pairwise_similarity_matrix_reference(samples) -> np.ndarray:
    """Scalar-loop Eq. (3) matrix: the reference the kernels must match.

    One :func:`_cdf_gap_integral` call per pair over presorted samples
    -- semantically the original implementation (minus its double
    sort), kept as the comparison baseline for the property suite and
    the ``benchmarks/perf`` harness.
    """
    sorted_samples = [np.sort(as_sample(s)) for s in samples]
    n = len(sorted_samples)
    sims = np.ones((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            sim = 1.0 - _cdf_gap_integral(
                sorted_samples[i], sorted_samples[j], signed_direction=0,
                assume_sorted=True,
            )
            sims[i, j] = sims[j, i] = sim
    return sims
