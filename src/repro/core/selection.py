"""Benchmark selection (paper §3.3, Algorithm 1).

Given the joint incident probability ``p`` of a node set and the
historical *coverage* of every benchmark (which past defects it
identified), the Selector picks the cheapest benchmark subset whose
coverage drives the residual incident probability ``p * (1 - C)``
below the target ``p0``.  The underlying set-cover-with-costs problem
is NP-hard; Algorithm 1 is the greedy
probability-decrement-per-time-unit heuristic with O(n^2) benchmark
evaluations, and :func:`select_benchmarks_exhaustive` provides the
O(2^n) reference used by the ablation bench.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CoverageTable",
    "SelectionResult",
    "joint_incident_probability",
    "select_benchmarks",
    "select_benchmarks_exhaustive",
]


@dataclass
class CoverageTable:
    """Historical validation outcomes: benchmark -> defects it found.

    The paper defines a subset's coverage as the fraction of all
    historically identified defective nodes that the subset would have
    caught.  Defect identifiers can be anything hashable (node ids,
    (node, incident) tuples, ...).
    """

    found: dict[str, set] = field(default_factory=dict)

    def record(self, benchmark: str, defects) -> None:
        """Merge newly identified defects into the history."""
        self.found.setdefault(benchmark, set()).update(defects)

    def ensure_benchmark(self, benchmark: str) -> None:
        """Register a benchmark with (so far) no identified defects."""
        self.found.setdefault(benchmark, set())

    @property
    def benchmarks(self) -> list[str]:
        """All benchmarks with recorded history."""
        return sorted(self.found)

    def all_defects(self) -> set:
        """Union of defects found by the full set."""
        result: set = set()
        for defects in self.found.values():
            result |= defects
        return result

    def coverage(self, subset) -> float:
        """Fraction of all historical defects the subset identifies."""
        total = self.all_defects()
        if not total:
            return 0.0
        covered: set = set()
        for benchmark in subset:
            covered |= self.found.get(benchmark, set())
        return len(covered) / len(total)


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one benchmark selection."""

    subset: tuple[str, ...]
    coverage: float
    initial_probability: float
    residual_probability: float
    total_time_minutes: float
    skipped: bool = False


def joint_incident_probability(node_probabilities) -> float:
    """``p = 1 - prod(1 - p_i)`` over the nodes of a validation event."""
    probs = np.clip(np.asarray(list(node_probabilities), dtype=float), 0.0, 1.0)
    if probs.size == 0:
        return 0.0
    return float(1.0 - np.prod(1.0 - probs))


def select_benchmarks(node_probabilities, durations: dict[str, float],
                      coverage: CoverageTable, p0: float) -> SelectionResult:
    """Algorithm 1: greedy benchmark selection.

    Parameters
    ----------
    node_probabilities:
        Per-node incident probabilities for the validation event.
    durations:
        Benchmark name -> running time in minutes (``t_i``).
    coverage:
        Historical coverage table (the full candidate set is its keys
        intersected with ``durations``).
    p0:
        Residual incident-probability target.

    Returns a :class:`SelectionResult`; ``skipped`` is true when the
    joint probability is already below ``p0`` and validation can be
    skipped entirely to save node hours.
    """
    if p0 < 0.0:
        raise ValueError(f"p0 must be non-negative, got {p0}")
    candidates = [name for name in coverage.benchmarks if name in durations]
    p = joint_incident_probability(node_probabilities)
    if p <= p0:
        return SelectionResult(subset=(), coverage=0.0, initial_probability=p,
                               residual_probability=p, total_time_minutes=0.0,
                               skipped=True)

    subset: list[str] = []
    current_coverage = 0.0
    residual = p
    remaining = list(candidates)
    while residual > p0 and remaining:
        best_name, best_gain_rate, best_coverage = None, 0.0, current_coverage
        for name in remaining:
            new_coverage = coverage.coverage(subset + [name])
            delta_p = p * (new_coverage - current_coverage)
            gain_rate = delta_p / max(durations[name], 1e-9)
            if gain_rate > best_gain_rate:
                best_name, best_gain_rate, best_coverage = name, gain_rate, new_coverage
        if best_name is None:
            # No remaining benchmark adds coverage; adding more cannot
            # reduce the residual probability.
            break
        subset.append(best_name)
        remaining.remove(best_name)
        current_coverage = best_coverage
        residual = p * (1.0 - current_coverage)

    total_time = sum(durations[name] for name in subset)
    return SelectionResult(subset=tuple(subset), coverage=current_coverage,
                           initial_probability=p, residual_probability=residual,
                           total_time_minutes=total_time)


def select_benchmarks_exhaustive(node_probabilities, durations: dict[str, float],
                                 coverage: CoverageTable,
                                 p0: float) -> SelectionResult:
    """O(2^n) optimal selection, for small candidate sets only.

    Finds the minimum-total-time subset meeting the residual target (or
    the maximum-coverage subset when no subset meets it).  Used by the
    ablation bench to quantify the greedy approximation gap.
    """
    candidates = [name for name in coverage.benchmarks if name in durations]
    if len(candidates) > 20:
        raise ValueError(
            f"exhaustive selection over {len(candidates)} benchmarks is infeasible"
        )
    p = joint_incident_probability(node_probabilities)
    if p <= p0:
        return SelectionResult(subset=(), coverage=0.0, initial_probability=p,
                               residual_probability=p, total_time_minutes=0.0,
                               skipped=True)

    best: SelectionResult | None = None
    for r in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, r):
            c = coverage.coverage(combo)
            residual = p * (1.0 - c)
            time = sum(durations[name] for name in combo)
            feasible = residual <= p0
            candidate = SelectionResult(subset=combo, coverage=c,
                                        initial_probability=p,
                                        residual_probability=residual,
                                        total_time_minutes=time)
            if best is None:
                best = candidate
                continue
            best_feasible = best.residual_probability <= p0
            if feasible and not best_feasible:
                best = candidate
            elif feasible and best_feasible and time < best.total_time_minutes:
                best = candidate
            elif not feasible and not best_feasible and c > best.coverage:
                best = candidate
    return best
