"""Process fan-out helpers and the ``REPRO_WORKERS`` knob.

Criteria learning is embarrassingly parallel across (sku, benchmark, metric)
tasks, and the control-plane pool's width is a deployment decision, not
a code change.  Both read their default parallelism from one place:

* ``resolve_workers(None)`` -> the ``REPRO_WORKERS`` environment
  variable when set, else the caller's default (1 for learning, so the
  single-machine behavior is unchanged unless asked for).
* :func:`process_map` -> an ordered map over a
  :class:`~concurrent.futures.ProcessPoolExecutor`, degrading to an
  inline loop when one worker (or one item) makes processes pure
  overhead.

Workers are *processes* because the kernels hold the GIL for their
whole numpy/C call; threads would serialize right back.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.exceptions import ServiceError

__all__ = ["resolve_workers", "process_map"]

_ENV_VAR = "REPRO_WORKERS"


def resolve_workers(explicit: int | None = None, *, default: int = 1) -> int:
    """Worker count from an explicit value, ``REPRO_WORKERS``, or default.

    Precedence: an explicit argument wins, then the environment
    variable, then ``default``.  The result is always at least 1;
    a malformed environment value raises (silently running serial
    would mask a deployment typo).
    """
    if explicit is not None:
        if explicit < 1:
            raise ServiceError(f"worker count must be at least 1, got {explicit}")
        return int(explicit)
    raw = os.environ.get(_ENV_VAR)
    if raw is None:
        return max(1, int(default))
    try:
        value = int(raw)
    except ValueError:
        raise ServiceError(f"{_ENV_VAR} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ServiceError(f"{_ENV_VAR} must be at least 1, got {value}")
    return value


def process_map(fn, items, *, workers: int | None = None) -> list:
    """``[fn(item) for item in items]`` across worker processes, in order.

    ``fn`` and every item must be picklable.  With one worker, one
    item, or an empty input the map runs inline -- same results, no
    process churn.  Exceptions propagate to the caller exactly as the
    inline loop would raise them.
    """
    items = list(items)
    count = resolve_workers(workers)
    if count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(count, len(items))) as pool:
        return list(pool.map(fn, items))
