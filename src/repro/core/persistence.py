"""Criteria persistence: save/load a Validator's learned state.

The paper's Validator learns criteria offline during build-out and
applies them online for months, refreshing periodically as new data
arrives -- which requires the criteria to live outside the process.
This module serializes the ``(benchmark, metric) -> criteria`` map to
a single JSON document and restores it into a fresh Validator.

Only what the online filter needs is persisted: the criteria sample,
threshold, and metric polarity.  The learning by-products (defect
indices, iteration counts) are recomputed on the next offline pass.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.validator import MetricCriteria, Validator
from repro.exceptions import CriteriaError

__all__ = ["save_criteria", "load_criteria", "criteria_payload",
           "apply_criteria_payload"]

_FORMAT_VERSION = 1


def criteria_payload(validator: Validator) -> dict:
    """The validator's learned criteria as a JSON-serializable dict.

    The same document :func:`save_criteria` writes to disk; the
    service journal embeds it directly in snapshot records.
    """
    if not validator.criteria:
        raise CriteriaError("validator has no learned criteria to save")
    entries = []
    for (benchmark, metric), criteria in validator.criteria.items():
        entries.append({
            "benchmark": benchmark,
            "metric": metric,
            "alpha": criteria.alpha,
            "higher_is_better": criteria.higher_is_better,
            "criteria": np.asarray(criteria.criteria, dtype=float).tolist(),
        })
    return {"version": _FORMAT_VERSION, "entries": entries}


def apply_criteria_payload(validator: Validator, payload: dict, *,
                           source: str = "<payload>") -> int:
    """Restore criteria from a :func:`criteria_payload` document.

    Entries for benchmarks outside the validator's suite are skipped
    (a shrunk suite must not resurrect stale criteria).  Returns the
    number of entries loaded.
    """
    try:
        if payload.get("version") != _FORMAT_VERSION:
            raise CriteriaError(
                f"unsupported criteria file version {payload.get('version')!r}"
            )
        entries = payload["entries"]
    except (KeyError, TypeError, AttributeError) as error:
        raise CriteriaError(f"malformed criteria file {source}: {error}") from error

    suite_names = {spec.name for spec in validator.suite}
    loaded = 0
    for entry in entries:
        try:
            benchmark = entry["benchmark"]
            metric = entry["metric"]
            criteria = np.asarray(entry["criteria"], dtype=float)
            alpha = float(entry["alpha"])
            higher_is_better = bool(entry["higher_is_better"])
        except (KeyError, TypeError, ValueError) as error:
            raise CriteriaError(
                f"malformed criteria entry in {source}: {error}"
            ) from error
        if benchmark not in suite_names:
            continue
        validator.criteria[(benchmark, metric)] = MetricCriteria(
            benchmark=benchmark, metric=metric, criteria=criteria,
            alpha=alpha, higher_is_better=higher_is_better, learning=None,
        )
        loaded += 1
    return loaded


def save_criteria(validator: Validator, path) -> None:
    """Write the validator's learned criteria to ``path`` as JSON."""
    Path(path).write_text(json.dumps(criteria_payload(validator)))


def load_criteria(validator: Validator, path) -> int:
    """Restore criteria from ``path`` into ``validator``.

    See :func:`apply_criteria_payload` for skip semantics.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CriteriaError(f"malformed criteria file {path}: {error}") from error
    return apply_criteria_payload(validator, payload, source=str(path))
