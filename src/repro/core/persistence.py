"""Criteria persistence: save/load a Validator's learned state.

The paper's Validator learns criteria offline during build-out and
applies them online for months, refreshing periodically as new data
arrives -- which requires the criteria to live outside the process.
This module serializes the ``(sku, benchmark, metric) -> criteria``
map to a single JSON document and restores it into a fresh Validator.

Only what the online filter needs is persisted: the criteria sample,
threshold, and metric polarity.  The learning by-products (defect
indices, iteration counts) are recomputed on the next offline pass.

Durability
----------
Criteria files gate months of online filtering, so writes are atomic
(tmp file + ``os.replace``; a crash mid-save can never leave a
half-written document at the final path), the previous file survives
as ``<path>.bak``, and the version-2 format carries a CRC32 checksum
over the entries so silent corruption (a truncated or bit-flipped
file that still parses as JSON) is detected at load time instead of
poisoning the online filter.  :func:`load_criteria` falls back to the
backup when the main file is corrupt -- the rollback half of guarded
criteria rollout's persistence story.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import numpy as np

from repro.core.validator import MetricCriteria, Validator
from repro.exceptions import CriteriaError

__all__ = ["save_criteria", "load_criteria", "criteria_payload",
           "apply_criteria_payload"]

_FORMAT_VERSION = 3
#: Version 1 files (no checksum) and version 2 files (no SKU axis;
#: entries land in the "unknown" namespace) remain loadable.
_SUPPORTED_VERSIONS = (1, 2, 3)


def _entries_checksum(entries: list[dict]) -> int:
    """CRC32 over the canonical JSON encoding of the entries."""
    canonical = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode())


def criteria_payload(validator: Validator) -> dict:
    """The validator's learned criteria as a JSON-serializable dict.

    The same document :func:`save_criteria` writes to disk; the
    service journal embeds it directly in snapshot records.
    """
    if not validator.criteria:
        raise CriteriaError("validator has no learned criteria to save")
    entries = []
    for (sku, benchmark, metric), criteria in validator.criteria.items():
        entries.append({
            "sku": sku,
            "benchmark": benchmark,
            "metric": metric,
            "alpha": criteria.alpha,
            "higher_is_better": criteria.higher_is_better,
            "criteria": np.asarray(criteria.criteria, dtype=float).tolist(),
        })
    return {"version": _FORMAT_VERSION,
            "checksum": _entries_checksum(entries),
            "entries": entries}


def apply_criteria_payload(validator: Validator, payload: dict, *,
                           source: str = "<payload>") -> int:
    """Restore criteria from a :func:`criteria_payload` document.

    Entries for benchmarks outside the validator's suite are skipped
    (a shrunk suite must not resurrect stale criteria).  Pre-SKU
    entries (format versions 1 and 2) restore into the ``"unknown"``
    namespace, where legacy windows score against them.  Returns the
    number of entries loaded.
    """
    try:
        version = payload.get("version")
        if version not in _SUPPORTED_VERSIONS:
            raise CriteriaError(
                f"unsupported criteria file version {version!r}"
            )
        entries = payload["entries"]
        if version >= 2:
            expected = int(payload["checksum"])
            actual = _entries_checksum(entries)
            if actual != expected:
                raise CriteriaError(
                    f"criteria file {source} failed its checksum "
                    f"(expected {expected}, computed {actual}); the file "
                    f"is corrupt")
    except (KeyError, TypeError, AttributeError, ValueError) as error:
        raise CriteriaError(f"malformed criteria file {source}: {error}") from error

    suite_names = {spec.name for spec in validator.suite}
    loaded = 0
    for entry in entries:
        try:
            benchmark = entry["benchmark"]
            metric = entry["metric"]
            sku = str(entry.get("sku", "unknown"))
            criteria = np.asarray(entry["criteria"], dtype=float)
            alpha = float(entry["alpha"])
            higher_is_better = bool(entry["higher_is_better"])
        except (KeyError, TypeError, ValueError) as error:
            raise CriteriaError(
                f"malformed criteria entry in {source}: {error}"
            ) from error
        if benchmark not in suite_names:
            continue
        validator.criteria[(sku, benchmark, metric)] = MetricCriteria(
            benchmark=benchmark, metric=metric, criteria=criteria,
            alpha=alpha, higher_is_better=higher_is_better, learning=None,
            sku=sku,
        )
        loaded += 1
    return loaded


def _backup_path(path: Path) -> Path:
    return path.with_name(path.name + ".bak")


def save_criteria(validator: Validator, path, *,
                  keep_backup: bool = True) -> None:
    """Atomically write the validator's learned criteria to ``path``.

    The document is written to a temporary sibling, flushed to stable
    storage, and moved into place with ``os.replace`` -- a reader (or
    a crash) can only ever observe the old complete file or the new
    complete file.  With ``keep_backup`` (the default) the previous
    file is preserved as ``<path>.bak`` first, so a later load can
    roll back past a corrupted save.
    """
    path = Path(path)
    payload = criteria_payload(validator)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload))
        handle.flush()
        os.fsync(handle.fileno())
    if keep_backup and path.exists():
        os.replace(path, _backup_path(path))
    os.replace(tmp, path)


def _load_payload(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CriteriaError(f"malformed criteria file {path}: {error}") from error


def load_criteria(validator: Validator, path, *,
                  fallback_to_backup: bool = True) -> int:
    """Restore criteria from ``path`` into ``validator``.

    When the main file is missing, unparsable, or fails its checksum
    and ``fallback_to_backup`` is set, the ``<path>.bak`` written by
    the previous :func:`save_criteria` is loaded instead; only when
    both are unusable does the original error propagate.  See
    :func:`apply_criteria_payload` for skip semantics.
    """
    path = Path(path)
    try:
        payload = _load_payload(path)
        return apply_criteria_payload(validator, payload, source=str(path))
    except CriteriaError:
        backup = _backup_path(path)
        if not fallback_to_backup or not backup.is_file():
            raise
        payload = _load_payload(backup)
        return apply_criteria_payload(validator, payload, source=str(backup))
