"""Benchmark parameter searching (paper Appendix B).

End-to-end validation benchmarks only need a window of steady-state
steps, not a full training run.  Appendix B searches offline for the
warm-up step count ``w`` and measurement step count ``n`` that
minimize total steps while keeping the window self-similar within the
similarity threshold ``alpha``:

1. estimate the step-throughput cycle period ``p`` with classical
   seasonal decomposition by moving averages;
2. split the series into cycles and walk from the start, looking for a
   run of consecutive cycles that are mutually similar;
3. set ``w`` to the beginning of that run and ``n`` to cover it;
4. across nodes, pick the candidate window that maximizes average
   pairwise similarity (repeatability).

statsmodels is not available offline, so the decomposition is
implemented here directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchsuite.runner import StepWindow
from repro.core.backend import default_backend
from repro.core.ecdf import as_sample
from repro.core.repeatability import pairwise_repeatability
from repro.exceptions import BenchmarkError

__all__ = [
    "seasonal_decompose",
    "estimate_period",
    "search_window",
    "tune_window_across_nodes",
]


@dataclass(frozen=True)
class SeasonalDecomposition:
    """Multiplicative decomposition ``series = trend * seasonal * resid``."""

    trend: np.ndarray
    seasonal: np.ndarray
    resid: np.ndarray
    period: int


def _centered_moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with NaN padding at the edges.

    Even windows use the standard 2x(window) convention so the average
    stays centered on a step.
    """
    n = series.size
    out = np.full(n, np.nan)
    if window >= n:
        return out
    if window % 2 == 1:
        kernel = np.ones(window) / window
        valid = np.convolve(series, kernel, mode="valid")
        half = window // 2
        out[half:half + valid.size] = valid
    else:
        kernel = np.ones(window + 1) / window
        kernel[0] = kernel[-1] = 0.5 / window
        valid = np.convolve(series, kernel, mode="valid")
        half = window // 2
        out[half:half + valid.size] = valid
    return out


def seasonal_decompose(series, period: int) -> SeasonalDecomposition:
    """Classical multiplicative seasonal decomposition by moving averages."""
    values = as_sample(series)
    if period < 2:
        raise BenchmarkError(f"period must be at least 2, got {period}")
    if values.size < 2 * period:
        raise BenchmarkError(
            f"series of {values.size} steps is too short for period {period}"
        )
    trend = _centered_moving_average(values, period)
    with np.errstate(invalid="ignore"):
        detrended = values / trend
    seasonal_means = np.ones(period)
    for phase in range(period):
        phase_values = detrended[phase::period]
        phase_values = phase_values[np.isfinite(phase_values)]
        if phase_values.size:
            seasonal_means[phase] = phase_values.mean()
    seasonal_means /= seasonal_means.mean()
    seasonal = np.tile(seasonal_means, values.size // period + 1)[:values.size]
    with np.errstate(invalid="ignore"):
        resid = values / (trend * seasonal)
    return SeasonalDecomposition(trend=trend, seasonal=seasonal,
                                 resid=resid, period=period)


def estimate_period(series, *, min_period: int = 8,
                    max_period: int | None = None) -> int:
    """Estimate the dominant cycle period via autocorrelation.

    The series is detrended with a long moving average first so slow
    warm-up drift does not masquerade as a cycle.
    """
    values = as_sample(series)
    n = values.size
    if max_period is None:
        max_period = max(min_period + 1, n // 4)
    if n < 2 * min_period:
        raise BenchmarkError("series too short for period estimation")

    trend = _centered_moving_average(values, min(max(n // 8, 3), n - 1))
    centered = values - np.where(np.isfinite(trend), trend, values.mean())
    centered -= centered.mean()
    denominator = float(np.dot(centered, centered))
    if denominator <= 0.0:
        return min_period

    lags = np.arange(min_period, min(max_period, n - 1) + 1)
    acf = np.array([
        float(np.dot(centered[:-lag], centered[lag:])) / denominator
        for lag in lags
    ])
    # Residual slow trend inflates the ACF at *every* small lag, so the
    # global maximum would collapse to min_period; a true cycle shows
    # up as a local peak instead.
    peaks = [i for i in range(1, acf.size - 1)
             if acf[i] > acf[i - 1] and acf[i] >= acf[i + 1]]
    if peaks:
        best = max(peaks, key=lambda i: acf[i])
        return int(lags[best])
    return int(lags[int(np.argmax(acf))])


def search_window(series, alpha: float = 0.95, *, period: int | None = None,
                  min_similar_cycles: int = 16) -> StepWindow:
    """Appendix B window search on one node's full step series.

    Finds the earliest run of ``min_similar_cycles`` consecutive cycles
    whose pairwise similarity exceeds ``alpha`` and returns the
    corresponding :class:`StepWindow`.  Falls back to the second half
    of the series when no such run exists (a high-variance benchmark).
    """
    values = as_sample(series)
    p = period if period is not None else estimate_period(values)
    n_cycles = values.size // p
    if n_cycles < 2:
        raise BenchmarkError(
            f"series of {values.size} steps has fewer than two {p}-step cycles"
        )
    # All consecutive-cycle similarities in one row-wise kernel call:
    # row i of the "a" rows against row i+1 of the "b" rows.
    cycles = np.sort(values[:n_cycles * p].reshape(n_cycles, p), axis=1)
    adjacent_sims = default_backend().rowwise_similarities(
        cycles[:-1], cycles[1:], assume_sorted=True)

    run_start = 0
    run_length = 1
    for i in range(1, n_cycles):
        if adjacent_sims[i - 1] > alpha:
            run_length += 1
        else:
            run_start, run_length = i, 1
        if run_length >= min_similar_cycles:
            warmup = run_start * p
            measure = run_length * p
            return StepWindow(warmup=warmup, measure=measure)
    # Fallback: keep the second half (conservative but always valid).
    half = values.size // 2
    return StepWindow(warmup=half, measure=values.size - half)


def tune_window_across_nodes(node_series: dict[str, np.ndarray],
                             alpha: float = 0.95, *,
                             min_similar_cycles: int = 16) -> StepWindow:
    """Pick the candidate window maximizing cross-node repeatability.

    Each node's series proposes a candidate window (its own
    :func:`search_window` result); every candidate is scored by the
    average pairwise similarity of the *windowed* series across all
    nodes, and the best-scoring window wins.  Ties break toward fewer
    total steps.
    """
    if len(node_series) < 2:
        raise BenchmarkError("window tuning needs series from at least two nodes")
    series_list = [as_sample(s) for s in node_series.values()]
    candidates = []
    for series in series_list:
        try:
            candidates.append(search_window(series, alpha,
                                            min_similar_cycles=min_similar_cycles))
        except BenchmarkError:
            continue
    if not candidates:
        raise BenchmarkError("no node produced a valid candidate window")

    def score(window: StepWindow) -> float:
        windowed = []
        for series in series_list:
            if series.size >= window.total_steps:
                windowed.append(window.apply(series))
        if len(windowed) < 2:
            return -np.inf
        return pairwise_repeatability(windowed)

    best = max(candidates, key=lambda w: (score(w), -w.total_steps))
    return best
