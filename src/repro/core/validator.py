"""The Validator (paper §3.4, §4): criteria learning and defect filtering.

The Validator owns two responsibilities:

* **Offline criteria learning** -- during cluster build-out the full
  benchmark set runs on every node and Algorithm 2 learns one criteria
  sample per (benchmark, metric).
* **Online defect filtering** -- a later validation run compares each
  node's result to the criteria with the one-sided similarity of
  Eq. (4); a node is defective as soon as *any* selected benchmark
  metric falls below the threshold.  Benchmark executions that fail
  outright (empty/NaN samples) are defects by definition.

Execution follows the paper's two-phase, bottom-up order: single-node
micro-benchmarks, single-node end-to-end, then multi-node -- with
defective nodes removed after each phase so they cannot pollute
multi-node results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.benchsuite.base import BenchmarkKind, BenchmarkSpec, Phase
from repro.benchsuite.runner import SuiteRunner
from repro.core.criteria import CriteriaResult, learn_criteria
from repro.core.distance import one_sided_similarity
from repro.exceptions import CriteriaError, InvalidSampleError
from repro.core.ecdf import as_sample

__all__ = ["MetricCriteria", "Violation", "ValidationReport", "Validator"]


@dataclass(frozen=True)
class MetricCriteria:
    """Learned criteria for one benchmark metric."""

    benchmark: str
    metric: str
    criteria: object  # 1-D sample array
    alpha: float
    higher_is_better: bool
    learning: CriteriaResult | None = None


@dataclass(frozen=True)
class Violation:
    """One criteria violation on one node."""

    node_id: str
    benchmark: str
    metric: str
    similarity: float
    reason: str = "below-threshold"


@dataclass
class ValidationReport:
    """Outcome of one validation run."""

    validated_nodes: list[str]
    violations: list[Violation] = field(default_factory=list)
    benchmarks_run: list[str] = field(default_factory=list)

    @property
    def defective_nodes(self) -> list[str]:
        """Node ids with at least one violation, in first-seen order."""
        seen: list[str] = []
        for violation in self.violations:
            if violation.node_id not in seen:
                seen.append(violation.node_id)
        return seen

    @property
    def healthy_nodes(self) -> list[str]:
        """Validated nodes with no violation."""
        defective = set(self.defective_nodes)
        return [n for n in self.validated_nodes if n not in defective]

    def violations_by_benchmark(self) -> dict[str, set[str]]:
        """Benchmark name -> set of node ids it flagged."""
        result: dict[str, set[str]] = {}
        for violation in self.violations:
            result.setdefault(violation.benchmark, set()).add(violation.node_id)
        return result


class Validator:
    """Runs benchmarks against criteria and filters defective nodes.

    Parameters
    ----------
    suite:
        The benchmark specs this Validator can execute.
    runner:
        Execution engine (owns measurement windows and the RNG).
    alpha:
        Similarity threshold; the paper uses 0.95.
    """

    def __init__(self, suite: tuple[BenchmarkSpec, ...], *,
                 runner: SuiteRunner | None = None, alpha: float = 0.95,
                 centroid: str = "hybrid"):
        if not suite:
            raise ValueError("Validator needs a non-empty benchmark suite")
        self.suite = tuple(suite)
        self.runner = runner or SuiteRunner()
        self.alpha = float(alpha)
        self.centroid = centroid
        self.criteria: dict[tuple[str, str], MetricCriteria] = {}

    def spec(self, name: str) -> BenchmarkSpec:
        """Suite lookup by benchmark name."""
        for candidate in self.suite:
            if candidate.name == name:
                return candidate
        raise KeyError(f"benchmark {name!r} is not in this Validator's suite")

    # ------------------------------------------------------------------
    # Offline criteria learning
    # ------------------------------------------------------------------
    def learn_criteria_from_results(self, spec: BenchmarkSpec,
                                    results: dict[str, object]) -> None:
        """Learn criteria for one benchmark from node -> result samples.

        ``results`` maps node id to a :class:`BenchmarkResult`; nodes
        whose samples are invalid are skipped for learning (they will
        be flagged online).
        """
        for metric in spec.metrics:
            samples = []
            for result in results.values():
                try:
                    samples.append(as_sample(result.sample(metric.name)))
                except (InvalidSampleError, KeyError):
                    continue
            if len(samples) < 2:
                raise CriteriaError(
                    f"not enough valid samples to learn criteria for "
                    f"{spec.name}/{metric.name}"
                )
            # Single-value metrics compare cleanest against a single
            # representative value (the medoid); series metrics use the
            # configured centroid (pooled by default) whose smoother
            # CDF keeps the one-sided filter's left tail quiet.
            is_series = any(np.size(s) > 1 for s in samples)
            centroid = self.centroid if is_series else "medoid"
            learned = learn_criteria(samples, self.alpha, centroid=centroid)
            self.criteria[(spec.name, metric.name)] = MetricCriteria(
                benchmark=spec.name,
                metric=metric.name,
                criteria=learned.criteria,
                alpha=self.alpha,
                higher_is_better=metric.higher_is_better,
                learning=learned,
            )

    def learn_criteria(self, nodes, benchmarks=None) -> None:
        """Build-out flow: run benchmarks on ``nodes`` and learn criteria."""
        for spec in self.resolve(benchmarks):
            results = self.runner.run_on_nodes(spec, nodes)
            self.learn_criteria_from_results(spec, results)

    # ------------------------------------------------------------------
    # Online validation
    # ------------------------------------------------------------------
    def check_result(self, spec: BenchmarkSpec, result) -> list[Violation]:
        """Compare one node's benchmark result to the learned criteria."""
        violations = []
        for metric in spec.metrics:
            key = (spec.name, metric.name)
            if key not in self.criteria:
                raise CriteriaError(
                    f"no criteria learned for {spec.name}/{metric.name}"
                )
            criteria = self.criteria[key]
            try:
                sample = as_sample(result.sample(metric.name))
            except (InvalidSampleError, KeyError) as error:
                violations.append(Violation(
                    node_id=result.node_id, benchmark=spec.name,
                    metric=metric.name, similarity=0.0,
                    reason=f"execution-failure: {error}",
                ))
                continue
            sim = one_sided_similarity(
                sample, criteria.criteria,
                higher_is_better=metric.higher_is_better,
            )
            if sim <= self.alpha:
                violations.append(Violation(
                    node_id=result.node_id, benchmark=spec.name,
                    metric=metric.name, similarity=sim,
                ))
        return violations

    def validate(self, nodes, benchmarks=None) -> ValidationReport:
        """Run the selected benchmarks on ``nodes`` and filter defects.

        Benchmarks execute phase by phase (single-node micro, then
        single-node end-to-end, then multi-node) and nodes flagged in
        an earlier phase are excluded from later phases, matching the
        paper's §4 execution order.
        """
        selected = self.resolve(benchmarks)
        report = ValidationReport(
            validated_nodes=[node.node_id for node in nodes],
            benchmarks_run=[spec.name for spec in selected],
        )
        remaining = list(nodes)
        for phase_specs in self.execution_phases(selected):
            for spec in phase_specs:
                for node in remaining:
                    result = self.runner.run(spec, node)
                    report.violations.extend(self.check_result(spec, result))
            flagged = set(report.defective_nodes)
            remaining = [node for node in remaining if node.node_id not in flagged]
        return report

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def resolve(self, benchmarks) -> tuple[BenchmarkSpec, ...]:
        """Resolve names/specs (or ``None`` = full suite) to specs."""
        if benchmarks is None:
            return self.suite
        resolved = []
        for item in benchmarks:
            resolved.append(item if isinstance(item, BenchmarkSpec)
                            else self.spec(item))
        return tuple(resolved)

    @staticmethod
    def execution_phases(specs) -> list[list[BenchmarkSpec]]:
        """Bucket specs into execution phases in bottom-up order.

        Public so alternative execution engines (the service pool) can
        reproduce the exact phase semantics of :meth:`validate`.
        """
        single_micro = [s for s in specs
                        if s.phase is Phase.SINGLE_NODE
                        and s.kind is BenchmarkKind.MICRO]
        single_e2e = [s for s in specs
                      if s.phase is Phase.SINGLE_NODE and s.kind is BenchmarkKind.E2E]
        multi = [s for s in specs if s.phase is Phase.MULTI_NODE]
        return [bucket for bucket in (single_micro, single_e2e, multi) if bucket]
