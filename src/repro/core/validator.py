"""The Validator (paper §3.4, §4): criteria learning and defect filtering.

The Validator owns two responsibilities:

* **Offline criteria learning** -- during cluster build-out the full
  benchmark set runs on every node and Algorithm 2 learns one criteria
  sample per (sku, benchmark, metric): each hardware class gets its
  own criteria namespace, because an H100's "normal" throughput is an
  A100's anomaly.
* **Online defect filtering** -- a later validation run compares each
  node's result to its own SKU's criteria with the one-sided
  similarity of Eq. (4); a node is defective as soon as *any* selected
  benchmark metric falls below the threshold.  Benchmark executions
  that fail outright (empty/NaN samples) are defects by definition,
  and a window can never be scored against another SKU's criteria --
  that raises :class:`~repro.exceptions.SkuMismatchError` instead of
  mis-scoring.

Execution follows the paper's two-phase, bottom-up order: single-node
micro-benchmarks, single-node end-to-end, then multi-node -- with
defective nodes removed after each phase so they cannot pollute
multi-node results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.benchsuite.base import BenchmarkKind, BenchmarkSpec, Phase
from repro.benchsuite.runner import SuiteRunner
from repro.core.backend import get_backend
from repro.core.criteria import CriteriaResult, learn_criteria
from repro.core.incremental import (
    CriteriaState,
    IncrementalConfig,
    learn_criteria_incremental,
)
from repro.core.measurement import (
    NONFINITE_REJECT,
    MeasurementBatch,
    PipelineStats,
)
from repro.core.parallel import process_map
from repro.exceptions import CriteriaError, InvalidSampleError, SkuMismatchError
from repro.core.ecdf import as_sample

__all__ = ["MetricCriteria", "Violation", "ValidationReport", "Validator"]


def _learn_task(task) -> tuple[CriteriaResult, CriteriaState | None]:
    """Picklable unit of criteria learning for process fan-out.

    The non-finite policy travels as a string (resolved per batch from
    measurement provenance) so the task tuple stays picklable, and the
    incremental engine's config/state/mode ride along the same way
    (both are plain dataclasses of arrays).  Returns ``(result,
    state)`` with ``state is None`` on the classic exact-only path, so
    the caller can tell whether there is engine state to persist.
    """
    samples, alpha, centroid, contamination, policy, config, state, mode = task
    if config is None:
        result = learn_criteria(samples, alpha, centroid=centroid,
                                contamination=contamination,
                                backend=get_backend(policy))
        return result, None
    return learn_criteria_incremental(
        samples, alpha, centroid=centroid, contamination=contamination,
        backend=get_backend(policy), config=config, state=state, mode=mode)


@dataclass(frozen=True)
class MetricCriteria:
    """Learned criteria for one benchmark metric in one SKU namespace."""

    benchmark: str
    metric: str
    criteria: object  # 1-D sample array
    alpha: float
    higher_is_better: bool
    learning: CriteriaResult | None = None
    sku: str = "unknown"


@dataclass(frozen=True)
class Violation:
    """One criteria violation on one node.

    ``sku`` is the verdict's criteria provenance: the namespace whose
    criteria the window was scored against, which -- by the isolation
    invariant -- always equals the window's own SKU.
    """

    node_id: str
    benchmark: str
    metric: str
    similarity: float
    reason: str = "below-threshold"
    sku: str = "unknown"


@dataclass
class ValidationReport:
    """Outcome of one validation run."""

    validated_nodes: list[str]
    violations: list[Violation] = field(default_factory=list)
    benchmarks_run: list[str] = field(default_factory=list)

    @property
    def defective_nodes(self) -> list[str]:
        """Node ids with at least one violation, in first-seen order."""
        seen: list[str] = []
        for violation in self.violations:
            if violation.node_id not in seen:
                seen.append(violation.node_id)
        return seen

    @property
    def healthy_nodes(self) -> list[str]:
        """Validated nodes with no violation."""
        defective = set(self.defective_nodes)
        return [n for n in self.validated_nodes if n not in defective]

    def violations_by_benchmark(self) -> dict[str, set[str]]:
        """Benchmark name -> set of node ids it flagged."""
        result: dict[str, set[str]] = {}
        for violation in self.violations:
            result.setdefault(violation.benchmark, set()).add(violation.node_id)
        return result


class Validator:
    """Runs benchmarks against criteria and filters defective nodes.

    Parameters
    ----------
    suite:
        The benchmark specs this Validator can execute.
    runner:
        Execution engine (owns measurement windows and the RNG).
    alpha:
        Similarity threshold; the paper uses 0.95.
    contamination:
        Fraction of learning windows assumed adversarially corrupt;
        forwarded to :func:`repro.core.criteria.learn_criteria` as the
        trimmed-aggregation budget.  0 (the default) reproduces plain
        Algorithm 2.
    incremental:
        When set, criteria learning routes through the incremental
        engine (:func:`repro.core.incremental.learn_criteria_incremental`)
        with this config: sketches + landmark medoids for large fleets,
        delta re-learns against the persisted per-(sku, benchmark,
        metric) :class:`~repro.core.incremental.CriteriaState`, and the
        classic exact path below ``exact_below``.  ``None`` (the
        default) keeps every learn on the exact Algorithm 2 path.
    """

    def __init__(self, suite: tuple[BenchmarkSpec, ...], *,
                 runner: SuiteRunner | None = None, alpha: float = 0.95,
                 centroid: str = "hybrid", contamination: float = 0.0,
                 incremental: IncrementalConfig | None = None):
        if not suite:
            raise ValueError("Validator needs a non-empty benchmark suite")
        self.suite = tuple(suite)
        self.runner = runner or SuiteRunner()
        self.alpha = float(alpha)
        self.centroid = centroid
        self.contamination = float(contamination)
        self.incremental = incremental
        self.criteria: dict[tuple[str, str, str], MetricCriteria] = {}
        # Incremental-engine state per (sku, benchmark, metric):
        # fingerprints + sketch batch + coreset profile from the last
        # learn.  Only populated when ``incremental`` is set.
        self.criteria_states: dict[tuple[str, str, str], CriteriaState] = {}
        # Keys whose next learn is pinned to the exact path -- the
        # control plane adds a key here when the rollout gate rejects
        # an (approximate) candidate, and the pin is consumed by that
        # next learn.
        self._force_exact: set[tuple[str, str, str]] = set()
        # Per-stage counters/timings of this Validator's learn/score
        # work; merged with the runner's execute/sanitize stages by
        # Anubis.pipeline_stats().
        self.stats = PipelineStats()
        # (sku, benchmark, metric) -> (MetricCriteria, presorted
        # sample).  Entries are validated by *identity* against the
        # live ``criteria`` dict, so any re-learn or persistence reload
        # (which replace the MetricCriteria object) invalidates them
        # without coordination.
        self._criteria_cache: dict[tuple[str, str, str],
                                   tuple[MetricCriteria, np.ndarray]] = {}

    def spec(self, name: str) -> BenchmarkSpec:
        """Suite lookup by benchmark name."""
        for candidate in self.suite:
            if candidate.name == name:
                return candidate
        raise KeyError(f"benchmark {name!r} is not in this Validator's suite")

    # ------------------------------------------------------------------
    # Offline criteria learning
    # ------------------------------------------------------------------
    def _learning_tasks(self, spec: BenchmarkSpec, results: dict[str, object]):
        """Per-(sku, metric) (sku, metric, samples, centroid, policy) inputs.

        Results are first partitioned by SKU -- each hardware class
        learns its own criteria namespace -- then each group's windows
        for one metric are collected into a
        :class:`~repro.core.measurement.MeasurementBatch`, which is
        where the dirty-telemetry handling now lives: metrics
        quarantined by sanitization are skipped (no verdict, nothing
        to learn from), as are crashed (empty) and hung
        (all-non-finite) windows -- those evict the node online, they
        don't shape the fleet's criteria.  The batch also resolves the
        non-finite policy from provenance: fully sanitized batches
        learn under ``"reject"`` (sanitization already removed
        non-finite values), raw batches under ``"mask"`` so a node's
        surviving finite values still contribute instead of one stray
        NaN silently dropping the whole node from the learning set.
        """
        tasks = []
        groups: dict[str, list] = {}
        for result in results.values():
            groups.setdefault(getattr(result, "sku", "unknown"),
                              []).append(result)
        for sku in sorted(groups):
            for metric in spec.metrics:
                batch = MeasurementBatch.from_results(
                    groups[sku], benchmark=spec.name, metric=metric.name,
                    higher_is_better=metric.higher_is_better, sku=sku)
                usable = [w for w in batch.scoreable()
                          if w.values.size and np.isfinite(w.values).any()]
                if len(usable) < 2:
                    raise CriteriaError(
                        f"not enough valid samples to learn criteria for "
                        f"{sku}/{spec.name}/{metric.name}"
                    )
                learn_batch = MeasurementBatch(
                    benchmark=spec.name, metric=metric.name,
                    windows=tuple(usable),
                    higher_is_better=metric.higher_is_better, sku=sku)
                samples = learn_batch.samples()
                # Single-value metrics compare cleanest against a single
                # representative value (the medoid); series metrics use
                # the configured centroid (pooled by default) whose
                # smoother CDF keeps the one-sided filter's left tail
                # quiet.
                is_series = any(np.size(s) > 1 for s in samples)
                centroid = self.centroid if is_series else "medoid"
                tasks.append((sku, metric, samples, centroid,
                              learn_batch.nonfinite_policy))
        return tasks

    def _store_criteria(self, spec: BenchmarkSpec, metric,
                        learned: CriteriaResult,
                        state: CriteriaState | None = None,
                        sku: str = "unknown") -> None:
        key = (sku, spec.name, metric.name)
        self._criteria_cache.pop(key, None)
        self.criteria[key] = MetricCriteria(
            benchmark=spec.name,
            metric=metric.name,
            criteria=learned.criteria,
            alpha=self.alpha,
            higher_is_better=metric.higher_is_better,
            learning=learned,
            sku=sku,
        )
        if state is not None:
            self.criteria_states[key] = state
            self._force_exact.discard(key)
            # Per-path learn accounting: "learn-exact", "learn-full",
            # "learn-delta" and "learn-cached" show up as distinct
            # pipeline stages so `repro report` exposes where re-learn
            # time actually goes.  ``state.seconds`` is measured inside
            # the (possibly worker-process) learn itself.
            self.stats.record(f"learn-{state.path}", count=1,
                              seconds=state.seconds)

    def invalidate_criteria_state(self, key: tuple[str, str, str]) -> None:
        """Drop the incremental state for ``key`` and pin its next learn.

        Called by the control plane when the rollout gate rejects a
        candidate: the cached sketches/coreset are no longer trusted,
        and the next learn for this (sku, benchmark, metric) runs on
        the exact Algorithm 2 path regardless of fleet size.  The pin
        is per-namespace: rejecting one SKU's candidate never touches
        a sibling SKU's state.
        """
        self.criteria_states.pop(key, None)
        self._force_exact.add(key)

    def _learn_inputs(self, key: tuple[str, str, str],
                      mode: str) -> tuple[IncrementalConfig | None,
                                          CriteriaState | None, str]:
        """Resolve (config, state, mode) for one learning task."""
        if self.incremental is None:
            return None, None, "auto"
        if key in self._force_exact:
            return self.incremental, None, "exact"
        return self.incremental, self.criteria_states.get(key), mode

    def learn_criteria_from_results(self, spec: BenchmarkSpec,
                                    results: dict[str, object], *,
                                    mode: str = "auto") -> None:
        """Learn criteria for one benchmark from node -> result samples.

        ``results`` maps node id to a :class:`BenchmarkResult`; nodes
        whose samples are invalid are skipped for learning (they will
        be flagged online).  ``mode`` is the incremental engine's learn
        hint (ignored on the classic path).
        """
        with self.stats.timed("learn"):
            for sku, metric, samples, centroid, policy in self._learning_tasks(
                    spec, results):
                key = (sku, spec.name, metric.name)
                config, state, key_mode = self._learn_inputs(key, mode)
                learned, new_state = _learn_task(
                    (samples, self.alpha, centroid, self.contamination,
                     policy, config, state, key_mode))
                self._store_criteria(spec, metric, learned, new_state,
                                     sku=sku)

    def learn_criteria(self, nodes, benchmarks=None, *,
                       workers: int | None = None, mode: str = "auto",
                       ) -> dict[tuple[str, str, str], list]:
        """Build-out flow: run benchmarks on ``nodes`` and learn criteria.

        Benchmark execution stays sequential (the runner owns the
        deterministic per-(node, benchmark) RNG streams), but the
        Algorithm 2 learning tasks -- independent per (sku, benchmark,
        metric) -- fan out across worker processes.  ``workers``
        defaults to the ``REPRO_WORKERS`` environment variable, else 1;
        results are identical at any width.

        ``mode`` hints the incremental engine (when the Validator was
        built with one): ``"auto"`` resolves per key via the state
        machine, ``"delta"``/``"full"``/``"exact"`` force a path.  Keys
        pinned by :meth:`invalidate_criteria_state` learn exactly
        regardless of the hint.

        Returns the per-(sku, benchmark, metric) learning windows so
        callers can shadow-evaluate the freshly learned criteria
        against the very samples they came from (guarded rollout,
        :mod:`repro.quality.rollout`).
        """
        tasks = []
        for spec in self.resolve(benchmarks):
            results = self.runner.run_on_nodes(spec, nodes)
            for sku, metric, samples, centroid, policy in self._learning_tasks(
                    spec, results):
                tasks.append((sku, spec, metric, samples, centroid, policy))
        with self.stats.timed("learn"):
            payloads = []
            for sku, spec, metric, samples, centroid, policy in tasks:
                config, state, key_mode = self._learn_inputs(
                    (sku, spec.name, metric.name), mode)
                payloads.append((samples, self.alpha, centroid,
                                 self.contamination, policy, config, state,
                                 key_mode))
            learned_results = process_map(_learn_task, payloads,
                                          workers=workers)
        windows: dict[tuple[str, str, str], list] = {}
        for (sku, spec, metric, samples, _, _), (learned, new_state) in zip(
                tasks, learned_results):
            self._store_criteria(spec, metric, learned, new_state, sku=sku)
            windows[(sku, spec.name, metric.name)] = samples
        return windows

    # ------------------------------------------------------------------
    # Online validation
    # ------------------------------------------------------------------
    def _criteria_reference(self, key: tuple[str, str, str],
                            criteria: MetricCriteria) -> np.ndarray:
        """Presorted criteria sample, cached until the criteria changes."""
        cached = self._criteria_cache.get(key)
        if cached is not None and cached[0] is criteria:
            return cached[1]
        reference = np.sort(as_sample(criteria.criteria))
        self._criteria_cache[key] = (criteria, reference)
        return reference

    def check_result(self, spec: BenchmarkSpec, result) -> list[Violation]:
        """Compare one node's benchmark result to the learned criteria."""
        return self.check_results(spec, [result])

    def check_results(self, spec: BenchmarkSpec, results) -> list[Violation]:
        """Compare many nodes' results to the criteria in one pass.

        Results are partitioned by SKU and each group's windows for
        one metric are scored against that namespace's cached criteria
        ECDF with one one-vs-many kernel call (Eq. 4) per group;
        violations come back in the same node-major, metric order a
        :meth:`check_result` loop would produce.  Scoring a group
        against criteria stored under the wrong namespace raises
        :class:`~repro.exceptions.SkuMismatchError` -- a wrong verdict
        is never an acceptable fallback.

        Metrics quarantined by the sanitization layer yield *no*
        verdict: quarantined telemetry indicts the measurement
        pipeline, not the node, so scoring it either way would be a
        coin-flip eviction.
        """
        started = time.perf_counter()
        results = list(results)
        backend = get_backend(NONFINITE_REJECT)
        groups: dict[str, list[int]] = {}
        for index, result in enumerate(results):
            sku = getattr(result, "sku", "unknown")
            groups.setdefault(sku, []).append(index)
        # metric name -> (per-result similarity by index, failure reasons)
        scored: dict[str, tuple[dict[int, float], dict[int, str]]] = {}
        for metric in spec.metrics:
            similarities: dict[int, float] = {}
            failures: dict[int, str] = {}
            for sku in sorted(groups):
                key = (sku, spec.name, metric.name)
                if key not in self.criteria:
                    raise CriteriaError(
                        f"no criteria learned for "
                        f"{sku}/{spec.name}/{metric.name}"
                    )
                criteria = self.criteria[key]
                if criteria.sku != sku:
                    # The namespace key and the stored provenance
                    # disagree (a mis-filed criteria object); scoring
                    # would silently judge one class by another's
                    # normal.
                    raise SkuMismatchError(
                        f"criteria stored under SKU namespace {sku!r} "
                        f"carry provenance {criteria.sku!r} for "
                        f"{spec.name}/{metric.name}")
                reference = self._criteria_reference(key, criteria)
                sorted_samples, indices = [], []
                for index in groups[sku]:
                    result = results[index]
                    if metric.name in getattr(result, "quarantined", ()):
                        continue
                    try:
                        # Scoring stays strictly per-window: an empty or
                        # non-finite online sample is an execution
                        # failure (a defect by definition), never
                        # maskable.
                        sample = as_sample(result.sample(metric.name))
                    except (InvalidSampleError, KeyError) as error:
                        failures[index] = str(error)
                        continue
                    sorted_samples.append(np.sort(sample))
                    indices.append(index)
                if indices:
                    direction = +1 if criteria.higher_is_better else -1
                    sims = backend.one_vs_many_similarities(
                        sorted_samples, reference,
                        signed_direction=direction, assume_sorted=True,
                    )
                    similarities.update(
                        (idx, float(sim))
                        for idx, sim in zip(indices, sims))
            scored[metric.name] = (similarities, failures)

        violations = []
        for index, result in enumerate(results):
            sku = getattr(result, "sku", "unknown")
            for metric in spec.metrics:
                similarities, failures = scored[metric.name]
                if index in failures:
                    violations.append(Violation(
                        node_id=result.node_id, benchmark=spec.name,
                        metric=metric.name, similarity=0.0,
                        reason=f"execution-failure: {failures[index]}",
                        sku=sku,
                    ))
                elif index in similarities and similarities[index] <= self.alpha:
                    violations.append(Violation(
                        node_id=result.node_id, benchmark=spec.name,
                        metric=metric.name, similarity=similarities[index],
                        sku=sku,
                    ))
        self.stats.record("score", count=len(results) * len(spec.metrics),
                          seconds=time.perf_counter() - started)
        return violations

    def validate(self, nodes, benchmarks=None) -> ValidationReport:
        """Run the selected benchmarks on ``nodes`` and filter defects.

        Benchmarks execute phase by phase (single-node micro, then
        single-node end-to-end, then multi-node) and nodes flagged in
        an earlier phase are excluded from later phases, matching the
        paper's §4 execution order.
        """
        selected = self.resolve(benchmarks)
        report = ValidationReport(
            validated_nodes=[node.node_id for node in nodes],
            benchmarks_run=[spec.name for spec in selected],
        )
        remaining = list(nodes)
        for phase_specs in self.execution_phases(selected):
            for spec in phase_specs:
                results = [self.runner.run(spec, node) for node in remaining]
                report.violations.extend(self.check_results(spec, results))
            flagged = set(report.defective_nodes)
            remaining = [node for node in remaining if node.node_id not in flagged]
        return report

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def resolve(self, benchmarks) -> tuple[BenchmarkSpec, ...]:
        """Resolve names/specs (or ``None`` = full suite) to specs."""
        if benchmarks is None:
            return self.suite
        resolved = []
        for item in benchmarks:
            resolved.append(item if isinstance(item, BenchmarkSpec)
                            else self.spec(item))
        return tuple(resolved)

    @staticmethod
    def execution_phases(specs) -> list[list[BenchmarkSpec]]:
        """Bucket specs into execution phases in bottom-up order.

        Public so alternative execution engines (the service pool) can
        reproduce the exact phase semantics of :meth:`validate`.
        """
        single_micro = [s for s in specs
                        if s.phase is Phase.SINGLE_NODE
                        and s.kind is BenchmarkKind.MICRO]
        single_e2e = [s for s in specs
                      if s.phase is Phase.SINGLE_NODE and s.kind is BenchmarkKind.E2E]
        multi = [s for s in specs if s.phase is Phase.MULTI_NODE]
        return [bucket for bucket in (single_micro, single_e2e, multi) if bucket]
