"""The ANUBIS/SuperBench system facade (paper §3.1, Figure 7).

:class:`Anubis` wires a :class:`~repro.core.selector.Selector` and a
:class:`~repro.core.validator.Validator` behind the event-driven
workflow the paper integrates with an orchestration system:

* **node-added / software-upgraded** events validate with the full set
  (and, during build-out, learn criteria);
* **job-allocation** events query the Selector: validation may be
  skipped, or a benchmark subset is executed on the allocated nodes;
* **incident-reported** events always validate the cordoned nodes;
* a **periodic tick** re-validates idle nodes whose predicted risk
  crossed the threshold.

Every executed validation feeds defect outcomes back into the coverage
table so the Selector evolves with the fleet, and defective nodes are
handed to the repair system's hot-buffer swap.
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.measurement import PipelineStats
from repro.core.selection import SelectionResult
from repro.core.selector import NodeStatus, Selector
from repro.core.validator import ValidationReport, Validator
from repro.exceptions import JournalError

__all__ = ["EventKind", "FULL_VALIDATION_KINDS", "ValidationEvent",
           "ValidationPlan", "ValidationOutcome", "Anubis"]


class EventKind(str, enum.Enum):
    """Orchestration events that can trigger validation (§3.1)."""

    NODE_ADDED = "node-added"
    SOFTWARE_UPGRADED = "software-upgraded"
    JOB_ALLOCATION = "job-allocation"
    INCIDENT_REPORTED = "incident-reported"
    PERIODIC = "periodic"


#: Event kinds that always validate with the full benchmark set,
#: bypassing the Selector (§3.1 workflow steps 2-4).
FULL_VALIDATION_KINDS = frozenset({
    EventKind.NODE_ADDED, EventKind.SOFTWARE_UPGRADED,
    EventKind.INCIDENT_REPORTED,
})


@dataclass(frozen=True)
class ValidationEvent:
    """One incoming event from the orchestration system."""

    kind: EventKind
    nodes: tuple
    statuses: tuple[NodeStatus, ...]
    duration_hours: float = 24.0

    def __post_init__(self):
        if len(self.nodes) != len(self.statuses):
            raise ValueError(
                f"{len(self.nodes)} nodes but {len(self.statuses)} statuses"
            )

    def to_payload(self) -> dict:
        """Serialize this event to plain JSON types.

        This is *the* wire/journal schema for events -- the service
        queue, the JSONL journal and every replay path share it.
        Nodes are stored by id only; the service re-binds ids against
        its fleet on recovery, so heavyweight node state never enters
        the journal.
        """
        return {
            "kind": self.kind.value,
            "nodes": [node.node_id for node in self.nodes],
            "statuses": [
                {"node_id": status.node_id,
                 "covariates": np.asarray(status.covariates,
                                          dtype=float).tolist()}
                for status in self.statuses
            ],
            "duration_hours": self.duration_hours,
        }

    @classmethod
    def from_payload(cls, payload: dict,
                     fleet_index: dict) -> "ValidationEvent":
        """Rebuild an event from its :meth:`to_payload` form.

        ``fleet_index`` maps node id -> :class:`~repro.hardware.node.Node`;
        ids no longer present in the fleet raise :class:`JournalError`
        (a journal must never silently validate the wrong hardware).
        """
        try:
            nodes = []
            for node_id in payload["nodes"]:
                if node_id not in fleet_index:
                    raise JournalError(
                        f"journaled event references unknown node {node_id!r}")
                nodes.append(fleet_index[node_id])
            statuses = tuple(
                NodeStatus(node_id=s["node_id"],
                           covariates=np.asarray(s["covariates"], dtype=float))
                for s in payload["statuses"]
            )
            return cls(
                kind=EventKind(payload["kind"]),
                nodes=tuple(nodes),
                statuses=statuses,
                duration_hours=float(payload["duration_hours"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise JournalError(f"malformed event payload: {error}") from error


@dataclass(frozen=True)
class ValidationPlan:
    """The policy decision for one event, before any benchmark runs.

    Splitting the decision from the execution lets alternative
    execution engines (the parallel service pool) apply exactly the
    same policy the synchronous facade applies.
    """

    event: ValidationEvent
    selection: SelectionResult | None
    benchmarks: tuple | None  # None means the full set

    @property
    def validates(self) -> bool:
        """True when this plan calls for executing benchmarks."""
        return self.selection is None or (
            not self.selection.skipped and bool(self.selection.subset)
        )


@dataclass
class ValidationOutcome:
    """What ANUBIS did with an event."""

    event: ValidationEvent
    selection: SelectionResult | None
    report: ValidationReport | None
    defective_node_ids: list[str] = field(default_factory=list)

    @property
    def skipped(self) -> bool:
        """True when no benchmark was executed."""
        return self.report is None


class Anubis:
    """Selector + Validator behind the Figure 7 workflow.

    Parameters
    ----------
    validator, selector:
        The two §3 subsystems.
    history_limit:
        Maximum retained :class:`ValidationOutcome` objects; older
        outcomes are evicted (a long-running service would otherwise
        grow without bound).  ``None`` keeps everything.  Aggregate
        counters survive eviction -- see :meth:`history_summary`.
    """

    def __init__(self, validator: Validator, selector: Selector, *,
                 history_limit: int | None = 10_000):
        self.validator = validator
        self.selector = selector
        self.history: deque[ValidationOutcome] = deque(maxlen=history_limit)
        self._events_by_kind: Counter[str] = Counter()
        self._events_skipped = 0
        self._events_validated = 0
        self._defects_flagged = 0

    def plan(self, event: ValidationEvent) -> ValidationPlan:
        """Decide what (if anything) to run for one event.

        Full-validation kinds bypass the Selector; job allocations and
        periodic checks are risk-gated and may select a subset or skip
        entirely.  No benchmark is executed.
        """
        if event.kind in FULL_VALIDATION_KINDS:
            return ValidationPlan(event=event, selection=None, benchmarks=None)
        selection = self.selector.select_for_event(
            list(event.statuses), event.duration_hours
        )
        benchmarks = (tuple(selection.subset)
                      if not selection.skipped and selection.subset else None)
        return ValidationPlan(event=event, selection=selection,
                              benchmarks=benchmarks)

    def handle(self, event: ValidationEvent) -> ValidationOutcome:
        """Process one event end to end and return the outcome."""
        plan = self.plan(event)
        if not plan.validates:
            outcome = ValidationOutcome(event=event, selection=plan.selection,
                                        report=None)
        else:
            outcome = self._run_validation(event, benchmarks=plan.benchmarks,
                                           selection=plan.selection)
        self.record(outcome)
        return outcome

    def record(self, outcome: ValidationOutcome) -> None:
        """Fold one outcome into the history and aggregate counters.

        :meth:`handle` calls this itself; external execution engines
        (the service control plane) call it after running a plan so
        the facade's history stays authoritative either way.
        """
        self.history.append(outcome)
        self._events_by_kind[outcome.event.kind.value] += 1
        if outcome.skipped:
            self._events_skipped += 1
        else:
            self._events_validated += 1
            self._defects_flagged += len(outcome.defective_node_ids)

    def pipeline_stats(self) -> dict:
        """Merged per-stage counters from the whole measurement spine.

        Combines the Validator's learn/score stages with its runner's
        execute/sanitize stages into one
        :meth:`~repro.core.measurement.PipelineStats.snapshot` view.
        """
        merged = PipelineStats()
        for stats in (getattr(self.validator, "stats", None),
                      getattr(self.validator.runner, "stats", None)):
            if stats is not None:
                merged = merged.merge(stats)
        return merged.snapshot()

    def history_summary(self) -> dict:
        """Aggregate event statistics, independent of history eviction."""
        return {
            "events": sum(self._events_by_kind.values()),
            "validated": self._events_validated,
            "skipped": self._events_skipped,
            "defective_nodes_flagged": self._defects_flagged,
            "by_kind": dict(self._events_by_kind),
            "pipeline": self.pipeline_stats(),
        }

    def fleet_report(self, records=None, *,
                     journal_health: dict | None = None) -> dict:
        """The fleet SLO report, as plain JSON.

        With ``records`` (an iterable of journal records, e.g. from
        :meth:`~repro.analytics.reader.JournalReader.read_all`) this is
        the full journal-derived report --
        :func:`repro.analytics.report.build_report`; pass the reader's
        :meth:`~repro.analytics.reader.JournalReader.health` dict as
        ``journal_health`` to surface corrupt-line and unknown-kind
        counts in the report's ``journal`` section.  Without, it
        covers what this in-memory facade alone knows: event history
        and measurement-pipeline counters.  Render with
        :func:`repro.analytics.report.render_markdown` /
        ``render_json``.
        """
        # Function-level import: analytics sits above core in the
        # import graph (its reader imports service.store, which
        # imports this module).
        from repro.analytics.report import build_report, report_from_history
        if records is not None:
            return build_report(records, journal_health=journal_health)
        return report_from_history(self)

    def _run_validation(self, event: ValidationEvent, *, benchmarks,
                        selection) -> ValidationOutcome:
        report = self.validator.validate(list(event.nodes), benchmarks=benchmarks)
        self.selector.record_validation(report)
        return ValidationOutcome(
            event=event,
            selection=selection,
            report=report,
            defective_node_ids=report.defective_nodes,
        )
