"""The ANUBIS/SuperBench system facade (paper §3.1, Figure 7).

:class:`Anubis` wires a :class:`~repro.core.selector.Selector` and a
:class:`~repro.core.validator.Validator` behind the event-driven
workflow the paper integrates with an orchestration system:

* **node-added / software-upgraded** events validate with the full set
  (and, during build-out, learn criteria);
* **job-allocation** events query the Selector: validation may be
  skipped, or a benchmark subset is executed on the allocated nodes;
* **incident-reported** events always validate the cordoned nodes;
* a **periodic tick** re-validates idle nodes whose predicted risk
  crossed the threshold.

Every executed validation feeds defect outcomes back into the coverage
table so the Selector evolves with the fleet, and defective nodes are
handed to the repair system's hot-buffer swap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.selection import SelectionResult
from repro.core.selector import NodeStatus, Selector
from repro.core.validator import ValidationReport, Validator

__all__ = ["EventKind", "ValidationEvent", "ValidationOutcome", "Anubis"]


class EventKind(str, enum.Enum):
    """Orchestration events that can trigger validation (§3.1)."""

    NODE_ADDED = "node-added"
    SOFTWARE_UPGRADED = "software-upgraded"
    JOB_ALLOCATION = "job-allocation"
    INCIDENT_REPORTED = "incident-reported"
    PERIODIC = "periodic"


@dataclass(frozen=True)
class ValidationEvent:
    """One incoming event from the orchestration system."""

    kind: EventKind
    nodes: tuple
    statuses: tuple[NodeStatus, ...]
    duration_hours: float = 24.0

    def __post_init__(self):
        if len(self.nodes) != len(self.statuses):
            raise ValueError(
                f"{len(self.nodes)} nodes but {len(self.statuses)} statuses"
            )


@dataclass
class ValidationOutcome:
    """What ANUBIS did with an event."""

    event: ValidationEvent
    selection: SelectionResult | None
    report: ValidationReport | None
    defective_node_ids: list[str] = field(default_factory=list)

    @property
    def skipped(self) -> bool:
        """True when no benchmark was executed."""
        return self.report is None


class Anubis:
    """Selector + Validator behind the Figure 7 workflow."""

    def __init__(self, validator: Validator, selector: Selector):
        self.validator = validator
        self.selector = selector
        self.history: list[ValidationOutcome] = []

    def handle(self, event: ValidationEvent) -> ValidationOutcome:
        """Process one event end to end and return the outcome."""
        if event.kind in (EventKind.NODE_ADDED, EventKind.SOFTWARE_UPGRADED,
                          EventKind.INCIDENT_REPORTED):
            outcome = self._run_validation(event, benchmarks=None, selection=None)
        else:
            selection = self.selector.select_for_event(
                list(event.statuses), event.duration_hours
            )
            if selection.skipped or not selection.subset:
                outcome = ValidationOutcome(event=event, selection=selection,
                                            report=None)
            else:
                outcome = self._run_validation(
                    event, benchmarks=selection.subset, selection=selection
                )
        self.history.append(outcome)
        return outcome

    def _run_validation(self, event: ValidationEvent, *, benchmarks,
                        selection) -> ValidationOutcome:
        report = self.validator.validate(list(event.nodes), benchmarks=benchmarks)
        self.selector.record_validation(report)
        return ValidationOutcome(
            event=event,
            selection=selection,
            report=report,
            defective_node_ids=report.defective_nodes,
        )
