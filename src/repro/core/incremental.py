"""Incremental criteria engine: sketches, landmark medoids, delta re-learning.

:func:`repro.core.criteria.learn_criteria` is pairwise-dominated: the
Algorithm 2 medoid seed needs the full ``O(n^2)`` similarity matrix,
which caps exact re-learns near 1k nodes.  This module keeps the same
clustering semantics but replaces the quadratic structure with three
bounded approximations, each with an exact escape hatch:

1. **Sketches** (:mod:`repro.core.sketch`) -- every node window is
   summarized by a ``k``-point equi-depth sketch, so the whole fleet's
   similarity structure lives in ``O(n * k)`` memory and any
   sketch-to-sketch Eq. 2 evaluation deviates from the raw evaluation
   by at most :func:`repro.core.sketch.distance_bound`.
2. **Landmark/coreset medoid** -- instead of the full matrix, a
   stratified *candidate* coreset (``C`` windows evenly spaced in
   median order) is scored against ``L`` *landmark* windows, and the
   medoid is the candidate maximizing its (contamination-trimmed)
   landmark profile sum -- ``O(C * L * k)`` work in place of
   ``O(n^2 * m)``.  The alpha-exclusion loop then runs one chunked
   one-vs-many pass per iteration over the sketch batch, ``O(n * k)``,
   mirroring the exact loop's semantics.  Windows whose similarity
   lands inside the ``distance_bound`` band around ``alpha`` are
   re-adjudicated with the exact ``fastdist`` kernel against the
   medoid's *raw* window, so borderline verdicts never ride on the
   approximation.
3. **Delta re-learning** -- a persistent :class:`CriteriaState` caches
   per-window fingerprints, the sketch batch and the candidate/
   landmark profile.  A re-learn touching ``d`` windows re-sketches
   only those rows and patches only the profile entries they back --
   ``O(d * n)`` work -- before re-running the cheap exclusion loop.
   Unchanged fingerprints short-circuit to the cached result outright.

Fallback triggers (state machine)
---------------------------------
``auto`` mode resolves to, in order:

* ``cached``  -- params + every fingerprint unchanged;
* ``exact``   -- fleet at or below ``exact_below`` (small fleets are
  cheapest and bit-exact on the classic path), or ``mode="exact"``
  forced by the caller (the control plane does this after a shadow
  -evaluation rollback);
* ``delta``   -- a compatible sketch state exists, the changed
  fraction is at most ``delta_threshold``, no window flipped its
  usable-telemetry status, and fewer than ``max_delta_steps``
  consecutive deltas have already run (coreset staleness bound);
* ``full``    -- everything else: sketches + coreset from scratch.

Approximate results never go live on their own authority: the
validator routes every candidate -- exact or approximate -- through
the ``repro.quality.rollout`` shadow-evaluation gate, and a rejected
candidate both rolls back and forces the next learn for that
(sku, benchmark, metric) onto the exact path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core import sketch as _sketch
from repro.core.backend import DistanceBackend, default_backend
from repro.core.criteria import (
    _MAX_ITERATIONS,
    CriteriaResult,
    _clean_and_warn,
    _pooled_sample,
    _validate_learn_args,
    learn_criteria,
)
from repro.core.fastdist import (
    SortedSampleBatch,
    landmark_similarities,
    one_vs_many_similarities,
)
from repro.core.measurement import NONFINITE_REJECT
from repro.exceptions import CriteriaError

__all__ = [
    "CriteriaState",
    "IncrementalConfig",
    "learn_criteria_incremental",
]


@dataclass(frozen=True)
class IncrementalConfig:
    """Knobs of the incremental engine (all with production defaults).

    ``verification_band`` defaults to the sketch's property-tested
    distance bound; widening it trades exact-kernel work for extra
    safety margin, narrowing it below the bound voids the borderline
    guarantee.
    """

    sketch_size: int = _sketch.DEFAULT_SKETCH_SIZE
    n_landmarks: int = 32
    n_candidates: int = 128
    exact_below: int = 256
    delta_threshold: float = 0.25
    max_delta_steps: int = 16
    max_criteria_size: int = 4096
    verification_band: float | None = None

    def __post_init__(self) -> None:
        if self.sketch_size < 2:
            raise CriteriaError(
                f"sketch_size must be >= 2, got {self.sketch_size}")
        if self.n_landmarks < 1:
            raise CriteriaError(
                f"n_landmarks must be >= 1, got {self.n_landmarks}")
        if self.n_candidates < 1:
            raise CriteriaError(
                f"n_candidates must be >= 1, got {self.n_candidates}")
        if not 0.0 <= self.delta_threshold <= 1.0:
            raise CriteriaError(
                f"delta_threshold must be in [0, 1], got {self.delta_threshold}")
        if self.max_criteria_size < 2:
            raise CriteriaError(
                f"max_criteria_size must be >= 2, got {self.max_criteria_size}")

    @property
    def band(self) -> float:
        """Half-width of the exact re-adjudication band around alpha."""
        if self.verification_band is not None:
            return self.verification_band
        return _sketch.distance_bound(self.sketch_size)


@dataclass
class CriteriaState:
    """Persistent cache between re-learns of one (sku, benchmark, metric).

    Holds everything a delta re-learn needs and nothing it does not:
    fingerprints to find the changed windows, the sketch batch to
    patch, and the candidate/landmark profile that seeds the medoid --
    ``O(n * sketch_size + C * L)`` floats, bounded regardless of
    window length.  Exact-path states carry only fingerprints + the
    result (``sketch_data`` is ``None``).
    """

    params: tuple
    n_input: int
    fingerprints: np.ndarray
    result: CriteriaResult
    exact: bool
    path: str
    seconds: float
    delta_steps: int = 0
    kept: np.ndarray | None = None
    excluded: tuple = ()
    sizes_raw: np.ndarray | None = None
    sketch_data: np.ndarray | None = None
    sketch_sizes: np.ndarray | None = None
    candidate_indices: np.ndarray | None = None
    landmark_indices: np.ndarray | None = None
    landmark_sims: np.ndarray | None = None

    def sketch_batch(self) -> SortedSampleBatch:
        """The cached per-window sketches as a kernel-ready batch."""
        if self.sketch_data is None or self.sketch_sizes is None:
            raise CriteriaError("exact-path state carries no sketch batch")
        return SortedSampleBatch(self.sketch_data, self.sketch_sizes)


def _engine_params(alpha: float, centroid: str, contamination: float,
                   backend: DistanceBackend, min_sample_size: int,
                   config: IncrementalConfig) -> tuple:
    """The compatibility key: a state only serves re-learns that match."""
    return (float(alpha), centroid, float(contamination), backend.nonfinite,
            max(min_sample_size, 1), config.sketch_size, config.n_landmarks,
            config.n_candidates, config.max_criteria_size, config.band)


def _stratified(batch: SortedSampleBatch, count: int,
                within: np.ndarray | None = None) -> np.ndarray:
    """Deterministic stratified row choice: evenly spaced medians.

    Sorting windows by their median and taking ``count`` evenly spaced
    ranks covers the fleet's value range (healthy mass *and* outliers)
    without randomness, so re-learns are reproducible.  ``within``
    restricts the choice to a row subset (used when every candidate
    has been excluded and the coreset must be re-seated among the
    survivors).
    """
    rows = np.arange(batch.n) if within is None else within
    medians = batch.data[rows, (batch.sizes[rows] - 1) // 2]
    order = rows[np.argsort(medians, kind="stable")]
    ranks = np.unique(
        np.linspace(0, rows.size - 1, min(count, rows.size)).round()
        .astype(np.intp))
    return np.sort(order[ranks])


class _MedoidSeeder:
    """The landmark/coreset stand-in for ``GetCentroid``.

    Holds the ``(C, L)`` similarity profile of the candidate coreset
    against the landmark windows and answers medoid queries for any
    active subset: the winner is the active candidate maximizing its
    landmark profile sum, with landmarks that were themselves excluded
    removed from the vote and the contamination budget trimming each
    candidate's ``ceil(contamination * L)`` smallest landmark
    similarities (landmarks are a stratified fleet sample, so poisoned
    landmarks appear at about the fleet's contamination rate).
    """

    def __init__(self, batch: SortedSampleBatch, cand_idx: np.ndarray,
                 lm_idx: np.ndarray, lm_sims: np.ndarray,
                 contamination: float):
        self.batch = batch
        self.cand_idx = cand_idx
        self.lm_idx = lm_idx
        self.lm_sims = lm_sims
        self.contamination = contamination

    def medoid(self, active: np.ndarray) -> int:
        """Approximate medoid (a *global* row index) among ``active``."""
        if active.size == 0:
            raise CriteriaError(
                "cannot take the medoid of an empty sample set")
        active_mask = np.zeros(self.batch.n, dtype=bool)
        active_mask[active] = True
        cand_rows = np.flatnonzero(active_mask[self.cand_idx])
        if cand_rows.size == 0:
            # Every candidate was excluded: re-seat the coreset among
            # the survivors (rare; bounded by the iteration cap).
            self.cand_idx = _stratified(self.batch, self.cand_idx.size,
                                        within=active)
            self.lm_sims = landmark_similarities(
                self.batch.take(self.cand_idx),
                self.batch.take(self.lm_idx))
            cand_rows = np.arange(self.cand_idx.size)
        cols = np.flatnonzero(active_mask[self.lm_idx])
        if cols.size == 0:
            cols = np.arange(self.lm_idx.size)
        sub = self.lm_sims[np.ix_(cand_rows, cols)]
        l_act = sub.shape[1]
        trim = 0
        if self.contamination > 0.0 and l_act > 1:
            trim = min(int(np.ceil(self.contamination * l_act)), l_act - 1)
        if trim > 0:
            sub = np.sort(sub, axis=1)[:, trim:]
        winner = cand_rows[int(np.argmax(sub.sum(axis=1)))]
        return int(self.cand_idx[winner])


def _run_sketch_loop(batch: SortedSampleBatch, seeder: _MedoidSeeder,
                     sizes_raw: np.ndarray, cleaned_row, alpha: float,
                     centroid: str, config: IncrementalConfig):
    """Algorithm 2 on sketches, with exact adjudication of the band.

    ``cleaned_row(i)`` lazily yields window ``i``'s raw sorted clean
    values (the delta path only materializes the few rows this loop
    actually touches).  Returns ``(surviving, sims, medoid,
    iterations, criteria, criteria_idx)`` in kept-index space.
    """
    n = batch.n
    all_idx = np.arange(n)
    iteration_centroid = "medoid" if centroid == "hybrid" else centroid

    def centroid_of(active: np.ndarray):
        if iteration_centroid == "medoid":
            idx = seeder.medoid(active)
            return batch.row(idx), idx
        pooled = _sketch.merge_sketches(
            [batch.row(i) for i in active], sizes_raw[active],
            config.max_criteria_size)
        return pooled, None

    active = all_idx
    criteria_sample, medoid = centroid_of(active)
    sims = one_vs_many_similarities(batch, criteria_sample,
                                    assume_sorted=True)
    seen_states: set[tuple] = set()
    iterations = 0
    while iterations < _MAX_ITERATIONS:
        defective = all_idx[sims <= alpha]
        surviving = all_idx[sims > alpha]
        if surviving.size == 0:
            raise CriteriaError(
                "criteria learning excluded every sample; "
                f"alpha={alpha} is too strict for this benchmark's variance"
            )
        state_key = (medoid, tuple(defective.tolist()))
        if np.array_equal(surviving, active) or state_key in seen_states:
            active = surviving
            break
        seen_states.add(state_key)
        active = surviving
        criteria_sample, medoid = centroid_of(active)
        sims = one_vs_many_similarities(batch, criteria_sample,
                                        assume_sorted=True)
        iterations += 1

    # Exact adjudication of the borderline band: any window whose
    # sketch similarity lies within the error bound of alpha gets
    # re-scored with the exact kernel against the raw reference, so a
    # verdict can only differ from the exact path where the two sims
    # legitimately disagree by more than the bound.
    if medoid is not None:
        reference = cleaned_row(medoid)
    else:
        reference = _pooled_sample([cleaned_row(i) for i in range(n)], active)
    border = np.flatnonzero(np.abs(sims - alpha) <= config.band)
    if border.size:
        border_batch = SortedSampleBatch.from_sorted(
            [cleaned_row(int(i)) for i in border])
        sims = sims.copy()
        sims[border] = one_vs_many_similarities(border_batch, reference,
                                                assume_sorted=True)
        surviving = all_idx[sims > alpha]
        if surviving.size == 0:
            raise CriteriaError(
                "criteria learning excluded every sample; "
                f"alpha={alpha} is too strict for this benchmark's variance"
            )
        active = surviving

    if centroid == "medoid":
        criteria = cleaned_row(medoid).copy()
        criteria_idx = medoid
    else:
        criteria = _sketch.merge_sketches(
            [batch.row(i) for i in active], sizes_raw[active],
            config.max_criteria_size)
        criteria_idx = None
    return active, sims, medoid, iterations, criteria, criteria_idx


def _assemble(samples, kept_arr: np.ndarray, excluded, surviving: np.ndarray,
              sims: np.ndarray, criteria: np.ndarray,
              criteria_idx: int | None, iterations: int,
              alpha: float) -> CriteriaResult:
    """Map kept-space loop output back to the input index space."""
    active_set = set(surviving.tolist())
    defect_indices = tuple(int(kept_arr[i]) for i in range(kept_arr.size)
                           if i not in active_set)
    healthy_indices = tuple(int(kept_arr[i]) for i in surviving.tolist())
    full_sims = np.zeros(len(samples))
    full_sims[kept_arr] = sims
    return CriteriaResult(
        criteria=criteria,
        defect_indices=defect_indices,
        healthy_indices=healthy_indices,
        centroid_index=(int(kept_arr[criteria_idx])
                        if criteria_idx is not None else None),
        iterations=iterations,
        alpha=alpha,
        similarities=tuple(float(s) for s in full_sims),
        excluded_indices=tuple(int(i) for i in excluded),
    )


def _sketch_batch_from_cleaned(cleaned, k: int) -> SortedSampleBatch:
    """Per-row sketches of already-sorted windows, vectorized when uniform."""
    sizes = np.fromiter((row.size for row in cleaned), dtype=np.intp,
                        count=len(cleaned))
    if sizes.size and (sizes == sizes[0]).all():
        data = np.vstack(cleaned) if len(cleaned) > 1 else cleaned[0][None, :]
        rows = _sketch.sketch_rows(data, k)
        return SortedSampleBatch(
            rows, np.full(len(cleaned), rows.shape[1], dtype=np.intp))
    return SortedSampleBatch.from_sorted(
        [_sketch.sketch_sorted(row, k) for row in cleaned])


def _full_sketch_learn(samples, fingerprints, alpha, centroid, contamination,
                       backend, min_sample_size, config, params, t0):
    """Sketches + coreset from scratch (the ``full`` path)."""
    cleaned, kept, excluded = _clean_and_warn(
        samples, backend, min_sample_size, stacklevel=4)
    kept_arr = np.asarray(kept, dtype=np.intp)
    sizes_raw = np.fromiter((row.size for row in cleaned), dtype=np.intp,
                            count=len(cleaned))
    batch = _sketch_batch_from_cleaned(cleaned, config.sketch_size)
    cand_idx = _stratified(batch, config.n_candidates)
    lm_idx = _stratified(batch, config.n_landmarks)
    lm_sims = landmark_similarities(batch.take(cand_idx),
                                    batch.take(lm_idx))
    seeder = _MedoidSeeder(batch, cand_idx, lm_idx, lm_sims, contamination)
    surviving, sims, medoid, iterations, criteria, criteria_idx = (
        _run_sketch_loop(batch, seeder, sizes_raw, lambda i: cleaned[i],
                         alpha, centroid, config))
    result = _assemble(samples, kept_arr, excluded, surviving, sims,
                       criteria, criteria_idx, iterations, alpha)
    state = CriteriaState(
        params=params, n_input=len(samples), fingerprints=fingerprints,
        result=result, exact=False, path="full",
        seconds=time.perf_counter() - t0, delta_steps=0, kept=kept_arr,
        excluded=tuple(int(i) for i in excluded), sizes_raw=sizes_raw,
        sketch_data=batch.data, sketch_sizes=batch.sizes,
        candidate_indices=seeder.cand_idx, landmark_indices=seeder.lm_idx,
        landmark_sims=seeder.lm_sims,
    )
    return result, state


def _clean_one(sample, backend: DistanceBackend,
               min_sample_size: int) -> np.ndarray | None:
    """One window through the quarantine pass; ``None`` when excluded."""
    arr = np.asarray(sample, dtype=float).ravel()
    if backend.nonfinite == NONFINITE_REJECT:
        finite = backend.clean(arr)
    else:
        finite = arr[np.isfinite(arr)]
    if finite.size < max(min_sample_size, 1):
        return None
    return np.sort(finite)


def _delta_learn(samples, fingerprints, state: CriteriaState, alpha, centroid,
                 contamination, backend, min_sample_size, config, params, t0):
    """Patch the cached state for the changed windows, then re-cluster.

    Returns ``None`` when the delta turns out to be structurally
    ineligible mid-flight (a window flipped its usable-telemetry
    status, or a re-sketched row outgrew the batch), in which case the
    caller falls back to the full path.
    """
    changed_input = np.flatnonzero(fingerprints != state.fingerprints)
    kept_arr = state.kept
    kept_pos = np.full(state.n_input, -1, dtype=np.intp)
    kept_pos[kept_arr] = np.arange(kept_arr.size)

    cleaned_cache: dict[int, np.ndarray] = {}
    changed_kept: list[int] = []
    for idx in changed_input.tolist():
        row = _clean_one(samples[idx], backend, min_sample_size)
        pos = int(kept_pos[idx])
        if (row is None) != (pos < 0):
            return None  # usable-telemetry flip: membership changed
        if row is not None:
            cleaned_cache[pos] = row
            changed_kept.append(pos)

    data = state.sketch_data.copy()
    sizes = state.sketch_sizes.copy()
    for pos in changed_kept:
        sk = _sketch.sketch_sorted(cleaned_cache[pos], config.sketch_size)
        if sk.size > data.shape[1]:
            return None  # row outgrew the padded batch: rebuild from scratch
        data[pos] = np.inf
        data[pos, :sk.size] = sk
        sizes[pos] = sk.size
    batch = SortedSampleBatch(data, sizes)
    sizes_raw = state.sizes_raw.copy()
    for pos in changed_kept:
        sizes_raw[pos] = cleaned_cache[pos].size

    # Patch the coreset profile: a changed landmark invalidates its
    # column, a changed candidate its row; changed rows that back
    # neither cost nothing here.  O(d * (C + L) * k) kernel work.
    cand_idx = state.candidate_indices
    lm_idx = state.landmark_indices
    lm_sims = state.landmark_sims.copy()
    changed_set = set(changed_kept)
    stale_cols = [j for j, lm in enumerate(lm_idx.tolist())
                  if lm in changed_set]
    stale_rows = [i for i, cand in enumerate(cand_idx.tolist())
                  if cand in changed_set]
    cand_batch = batch.take(cand_idx)
    for j in stale_cols:
        lm_sims[:, j] = one_vs_many_similarities(
            cand_batch, batch.row(int(lm_idx[j])), assume_sorted=True)
    if stale_rows:
        fresh_cols = [j for j in range(lm_idx.size) if j not in stale_cols]
        if fresh_cols:
            patch = landmark_similarities(
                batch.take(cand_idx[stale_rows]),
                batch.take(lm_idx[fresh_cols]))
            lm_sims[np.ix_(stale_rows, fresh_cols)] = patch

    def cleaned_row(pos: int) -> np.ndarray:
        row = cleaned_cache.get(pos)
        if row is None:
            row = _clean_one(samples[int(kept_arr[pos])], backend,
                             min_sample_size)
            cleaned_cache[pos] = row
        return row

    seeder = _MedoidSeeder(batch, cand_idx, lm_idx, lm_sims, contamination)
    surviving, sims, medoid, iterations, criteria, criteria_idx = (
        _run_sketch_loop(batch, seeder, sizes_raw, cleaned_row, alpha,
                         centroid, config))
    result = _assemble(samples, kept_arr, state.excluded, surviving, sims,
                       criteria, criteria_idx, iterations, alpha)
    new_state = CriteriaState(
        params=params, n_input=state.n_input, fingerprints=fingerprints,
        result=result, exact=False, path="delta",
        seconds=time.perf_counter() - t0,
        delta_steps=state.delta_steps + 1, kept=kept_arr,
        excluded=state.excluded, sizes_raw=sizes_raw,
        sketch_data=data, sketch_sizes=sizes,
        candidate_indices=seeder.cand_idx, landmark_indices=seeder.lm_idx,
        landmark_sims=seeder.lm_sims,
    )
    return result, new_state


def learn_criteria_incremental(samples, alpha: float = 0.95, *,
                               centroid: str = "hybrid",
                               contamination: float = 0.0,
                               backend: DistanceBackend | None = None,
                               min_sample_size: int = 1,
                               config: IncrementalConfig | None = None,
                               state: CriteriaState | None = None,
                               mode: str = "auto"):
    """Algorithm 2 with sketches, a landmark coreset and delta re-learning.

    Drop-in alternative to :func:`repro.core.criteria.learn_criteria`
    that returns ``(result, state)``: pass the returned state back on
    the next re-learn of the same (sku, benchmark, metric) stream to unlock
    the delta path.  ``mode`` is a hint -- ``"auto"`` (resolve by the
    state machine in the module docstring), ``"exact"`` (force the
    classic exact learn, used after a rollout rollback), ``"full"``
    (rebuild sketches, skip delta) or ``"delta"`` (prefer delta; still
    falls back to full when structurally ineligible).
    """
    if mode not in ("auto", "exact", "full", "delta"):
        raise CriteriaError(f"unknown learn mode {mode!r}")
    config = config or IncrementalConfig()
    backend = backend or default_backend()
    _validate_learn_args(samples, alpha, centroid, contamination)
    t0 = time.perf_counter()
    params = _engine_params(alpha, centroid, contamination, backend,
                            min_sample_size, config)
    fingerprints = _sketch.fingerprint_rows(samples)

    compatible = (state is not None and state.params == params
                  and state.n_input == len(samples))
    if (compatible and np.array_equal(state.fingerprints, fingerprints)
            and (state.exact or mode != "exact")):
        return state.result, replace(
            state, path="cached", seconds=time.perf_counter() - t0)

    if mode == "exact" or len(samples) <= config.exact_below:
        result = learn_criteria(
            samples, alpha, centroid=centroid, contamination=contamination,
            backend=backend, min_sample_size=min_sample_size)
        new_state = CriteriaState(
            params=params, n_input=len(samples), fingerprints=fingerprints,
            result=result, exact=True, path="exact",
            seconds=time.perf_counter() - t0,
        )
        return result, new_state

    if (mode in ("auto", "delta") and compatible and not state.exact
            and centroid != "mean"
            and state.delta_steps < config.max_delta_steps):
        changed = int(np.count_nonzero(fingerprints != state.fingerprints))
        if changed <= config.delta_threshold * len(samples):
            out = _delta_learn(samples, fingerprints, state, alpha, centroid,
                               contamination, backend, min_sample_size,
                               config, params, t0)
            if out is not None:
                return out

    return _full_sketch_learn(samples, fingerprints, alpha, centroid,
                              contamination, backend, min_sample_size,
                              config, params, t0)
