"""Repeatability drift detection after software updates (§3.4).

The paper's third repeatability guideline: *"After firmware/driver
updates, re-tune and re-evaluate the repeatability in case it
deteriorates on newer versions."*  A driver update can change a
benchmark's absolute level (fine -- criteria are re-learned) or its
*variance* (dangerous -- the old similarity threshold starts flagging
healthy nodes).

:func:`evaluate_drift` compares samples collected before and after an
update and reports, per benchmark metric:

* the relative level shift (new criteria needed when it exceeds the
  threshold headroom);
* the repeatability before and after (re-tuning needed when the new
  value falls below the alpha threshold's safety margin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backend import DistanceBackend, get_backend
from repro.core.ecdf import as_sample
from repro.core.measurement import NONFINITE_MASK
from repro.core.repeatability import pairwise_repeatability
from repro.exceptions import InvalidSampleError

__all__ = ["DriftReport", "evaluate_drift", "predicted_eviction_rate"]


def predicted_eviction_rate(windows, criteria, *, alpha: float,
                            higher_is_better: bool = True,
                            backend: DistanceBackend | None = None) -> float:
    """Fraction of ``windows`` the one-sided filter would evict.

    The shadow-evaluation primitive of guarded criteria rollout
    (:mod:`repro.quality.rollout`): before a freshly learned criteria
    goes live, it is scored against the previous measurement window's
    per-node samples exactly as the online filter would score them
    (Eq. 4), and the predicted fleet-wide eviction rate is compared to
    the active criteria's.  Non-finite values in the windows are
    masked, and windows with nothing finite left are counted as
    evictions (they would fail online as execution failures).

    Raises :class:`InvalidSampleError` when ``windows`` is empty --
    a rollout decision needs at least one shadow window.
    """
    windows = list(windows)
    if not windows:
        raise InvalidSampleError(
            "predicted eviction rate needs at least one window")
    backend = backend or get_backend(NONFINITE_MASK)
    usable, dead = [], 0
    for window in windows:
        arr = np.asarray(window, dtype=float).ravel()
        arr = arr[np.isfinite(arr)]
        if arr.size:
            usable.append(np.sort(arr))
        else:
            dead += 1
    if not usable:
        return 1.0
    reference = np.sort(backend.clean(criteria))
    direction = +1 if higher_is_better else -1
    sims = backend.one_vs_many_similarities(
        usable, reference, signed_direction=direction, assume_sorted=True)
    evicted = int(np.count_nonzero(sims <= alpha)) + dead
    return evicted / len(windows)


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one before/after repeatability comparison.

    Attributes
    ----------
    level_shift:
        Relative change of the pooled mean (positive = faster after).
    distribution_distance:
        Eq. (2) distance between the pooled before/after samples.
    repeatability_before / repeatability_after:
        Mean pairwise similarity within each epoch.
    needs_relearn:
        The distribution moved enough that old criteria are invalid.
    needs_retune:
        Repeatability deteriorated below the safety margin; benchmark
        parameters must be re-searched (Appendix B) before the
        benchmark can keep validating.
    """

    level_shift: float
    distribution_distance: float
    repeatability_before: float
    repeatability_after: float
    needs_relearn: bool
    needs_retune: bool

    @property
    def healthy(self) -> bool:
        """True when the update changed nothing that matters."""
        return not (self.needs_relearn or self.needs_retune)


def evaluate_drift(before, after, *, alpha: float = 0.95,
                   margin: float = 0.5,
                   backend: DistanceBackend | None = None) -> DriftReport:
    """Compare per-node samples before and after a software update.

    Parameters
    ----------
    before, after:
        Sequences of per-node samples from the two software versions
        (need at least two each).
    alpha:
        The validation similarity threshold in force.
    margin:
        Fraction of the threshold headroom ``1 - alpha`` that
        repeatability loss or level drift may consume before being
        flagged.  With ``alpha=0.95`` and ``margin=0.5``: criteria must
        be re-learned when the distributions moved more than 2.5%, and
        parameters re-tuned when mean pairwise distance exceeds 2.5%.
    """
    if len(before) < 2 or len(after) < 2:
        raise InvalidSampleError("drift evaluation needs >= 2 samples per epoch")
    if not 0.0 < margin <= 1.0:
        raise ValueError(f"margin must be in (0, 1], got {margin}")
    headroom = (1.0 - alpha) * margin
    backend = backend or get_backend(NONFINITE_MASK)

    pooled_before = np.concatenate([as_sample(s) for s in before])
    pooled_after = np.concatenate([as_sample(s) for s in after])
    level_shift = float(pooled_after.mean() / pooled_before.mean() - 1.0)
    distance = backend.cdf_distance(pooled_after, pooled_before)

    repeatability_before = pairwise_repeatability(before, backend=backend)
    repeatability_after = pairwise_repeatability(after, backend=backend)

    needs_relearn = distance > headroom
    needs_retune = repeatability_after < 1.0 - headroom
    return DriftReport(
        level_shift=level_shift,
        distribution_distance=distance,
        repeatability_before=repeatability_before,
        repeatability_after=repeatability_after,
        needs_relearn=needs_relearn,
        needs_retune=needs_retune,
    )
