"""Batched, vectorized ECDF distance kernels (the ``fastdist`` layer).

:mod:`repro.core.distance` defines the paper's Eq. (2)--(4) metrics as
scalar functions over one pair of samples.  They are the *reference
semantics* -- short, auditable, and obviously faithful to the paper --
but every hot path in the system (Algorithm 2 criteria learning, the
online one-sided filter, the Fig. 9 / Table 5 / Table 6 regenerators)
needs the same integral over thousands of pairs, and a Python-level
pair loop re-sorting both samples per call dominates wall-clock long
before the fleet reaches production size.

This module computes the identical integrals batch-wise:

* :class:`SortedSampleBatch` validates and sorts every sample **once**
  and keeps the per-sample sizes/extrema needed for normalization, so
  no kernel ever re-sorts an input.
* :func:`batch_gap_integrals` is the core many-pairs kernel: for B
  pairs of presorted rows it builds each pair's merged breakpoint grid
  with one stable (run-merging) sort, reads both ECDFs off cumulative
  origin counts -- the counts are exactly what ``searchsorted(...,
  side="right")`` returns at each breakpoint -- and integrates the
  piecewise-constant gap with one einsum.
* :func:`pairwise_distances` / :func:`pairwise_similarities` produce
  the full symmetric Eq. (3) matrix.  Uniform-length batches (fixed
  measurement windows -- the criteria-learning shape) take a dedicated
  fast path: the integrand only depends on the pair's cumulative
  counts ``(ca, cb)``, so it is precomputed into a cache-resident
  ``(m+1) x (m+1)`` table, and Abel summation turns the gap integral
  into one gather-dot per sample pair (each observation contributes
  ``x * (F(before) - F(after))``), driven by a single global stable
  argsort instead of any per-pair sorting.  When a C compiler is on
  the host, :mod:`repro.core._cmerge` replaces even that with a
  register-resident two-pointer merge per pair; ragged batches fall
  back to the general row-block kernel.
* :func:`one_vs_many_distances` scores every sample of a batch against
  one presorted reference ECDF in a single call -- the online-filter
  shape, where the reference is a learned criteria.

Exactness
---------
The kernels are not approximations.  The merged multiset grid is a
superset of the deduplicated ``union1d`` grid the scalar path uses:
duplicate breakpoints contribute zero-width segments, segments outside
a pair's support have zero integrand, and the per-pair CDF values and
segment widths are bit-identical to the scalar path's.  Only the final
summation order differs, so results agree with the scalar reference to
floating-point accumulation error (enforced at <= 1e-9 by the property
suite and the perf-smoke CI job; observed deviation is ~1e-15).

Padding convention: rows are right-padded with ``+inf`` so real
observations always sort before padding; a segment is integrable iff
its right endpoint is finite.
"""

from __future__ import annotations

import numpy as np

from repro.core import _cmerge
from repro.core.ecdf import as_sample
from repro.exceptions import InvalidSampleError

__all__ = [
    "SortedSampleBatch",
    "batch_gap_integrals",
    "landmark_similarities",
    "one_vs_many_distances",
    "one_vs_many_similarities",
    "pairwise_distances",
    "pairwise_similarities",
]

_PAD = np.inf

# Ceiling on elements per kernel intermediate (~32 MB of float64) used to
# chunk one-vs-many scoring against very large pooled references.
_CHUNK_ELEMENTS = 4_000_000


class SortedSampleBatch:
    """N samples validated, sorted once, and padded into one matrix.

    Attributes
    ----------
    data:
        ``(n, width)`` float matrix; row *i* holds sample *i* sorted
        ascending, right-padded with ``+inf`` to the longest length.
    sizes:
        ``(n,)`` int array of true sample lengths.
    mins / maxs:
        ``(n,)`` arrays of per-sample extrema (needed for the Eq. (2)
        normalization span without touching the padded rows again).
    """

    __slots__ = ("data", "sizes", "mins", "maxs")

    def __init__(self, data: np.ndarray, sizes: np.ndarray):
        self.data = data
        self.sizes = sizes
        n = data.shape[0]
        if n:
            self.mins = data[:, 0].copy()
            self.maxs = data[np.arange(n), sizes - 1]
        else:
            self.mins = np.empty(0)
            self.maxs = np.empty(0)

    @classmethod
    def from_samples(cls, samples, *,
                     nonfinite: str = "reject") -> "SortedSampleBatch":
        """Validate (via :func:`~repro.core.ecdf.as_sample`), sort and pad.

        ``nonfinite`` is the per-row NaN/Inf policy: ``"reject"``
        (default) raises on any non-finite entry, ``"mask"`` drops the
        non-finite entries of each row and keeps the rest (raising only
        when a row has nothing finite left).  Masking happens *before*
        padding, so the ``+inf`` padding convention is never confused
        with observed infinities and every kernel scores the masked
        rows exactly as the scalar reference scores the cleaned
        samples.
        """
        arrays = [np.sort(as_sample(s, nonfinite=nonfinite)) for s in samples]
        return cls.from_sorted(arrays)

    @classmethod
    def from_sorted(cls, sorted_arrays) -> "SortedSampleBatch":
        """Build from already-sorted, already-validated 1-D arrays."""
        n = len(sorted_arrays)
        sizes = np.fromiter((a.size for a in sorted_arrays), dtype=np.intp,
                            count=n)
        if n == 0:
            return cls(np.empty((0, 0)), sizes)
        width = int(sizes.max())
        data = np.full((n, width), _PAD)
        for i, arr in enumerate(sorted_arrays):
            data[i, :arr.size] = arr
        return cls(data, sizes)

    @property
    def n(self) -> int:
        """Number of samples in the batch."""
        return self.data.shape[0]

    @property
    def width(self) -> int:
        """Padded row width (longest sample length)."""
        return self.data.shape[1]

    def row(self, i: int) -> np.ndarray:
        """Sample ``i`` sorted, without padding."""
        return self.data[i, :self.sizes[i]]

    def take(self, indices) -> "SortedSampleBatch":
        """Sub-batch of the given rows (no re-sort, no re-validation)."""
        indices = np.asarray(indices, dtype=np.intp)
        return SortedSampleBatch(self.data[indices], self.sizes[indices])


def _normalize(integrals, a_mins, a_maxs, b_mins, b_maxs) -> np.ndarray:
    """Eq. (2) normalization: divide by the span of ``[min(0, lo), hi]``."""
    lo = np.minimum(0.0, np.minimum(a_mins, b_mins))
    hi = np.maximum(a_maxs, b_maxs)
    span = hi - lo
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(span > 0.0, np.minimum(1.0, integrals / span), 0.0)
    return np.asarray(out, dtype=float)


def _signed_gap(scaled_a, scaled_b, signed_direction: int) -> np.ndarray:
    """Numerator of the gap integrand (symmetric or one-sided)."""
    if signed_direction == 0:
        return np.abs(scaled_a - scaled_b)
    if signed_direction > 0:
        return np.maximum(0.0, scaled_a - scaled_b)
    return np.maximum(0.0, scaled_b - scaled_a)


def _gap_integrals_vs_fixed(fixed: np.ndarray, data: np.ndarray,
                            sizes: np.ndarray, signed_direction: int,
                            fixed_is_a: bool) -> np.ndarray:
    """Unnormalized gap integrals of B padded rows against one sample.

    ``fixed`` is a sorted, unpadded 1-D sample shared by every pair;
    ``data`` holds B sorted rows right-padded with ``+inf``.  The pair
    grids are built without sorting: one ``searchsorted`` locates every
    row element inside ``fixed``, which fixes each element's slot in
    its pair's merged grid; the rest is scatters and a running count.

    The integrand is evaluated on cross-scaled counts,
    ``|count_row * n_fixed - count_fixed * n_row|`` over
    ``max(count_row * n_fixed, count_fixed * n_row)``: counts and sizes
    are small integers, so the scaled products are *exact* in float64
    and the integrand rounds exactly once -- at least as accurate as
    the reference's ``count/size`` CDF evaluations.

    ``fixed_is_a`` assigns the Eq. (4) roles: ``True`` makes ``fixed``
    the observed (``a``) side for one-sided directions.
    """
    n_rows, width = data.shape
    n_fixed = fixed.size
    merged_width = width + n_fixed

    # Merged-grid slot of data[r, t]: t row elements precede it, plus
    # every fixed element sorting before it.  Ties break fixed-first,
    # which only reorders inside zero-width segments.
    slots = np.searchsorted(fixed, data.ravel(), side="right")
    slots = slots.reshape(n_rows, width)
    slots += np.arange(width)

    row_index = np.arange(n_rows)[:, None]
    from_rows = np.zeros((n_rows, merged_width), dtype=bool)
    from_rows[row_index, slots] = True
    merged = np.empty((n_rows, merged_width))
    merged[row_index, slots] = data
    # Boolean assignment fills row-major, i.e. each row's free slots
    # ascending -- exactly where the (sorted) fixed sample belongs.
    merged[~from_rows] = np.broadcast_to(fixed, (n_rows, n_fixed)).reshape(-1)

    # count_rows[k] = data-observations <= merged[k]  (row padding is
    # +inf, so it only ever occupies trailing slots); the fixed-side
    # count is the complement of the slot index.
    count_rows = np.cumsum(from_rows, axis=1, dtype=np.float64)[:, :-1]
    positions = np.arange(1.0, merged_width)
    # Cross-scale instead of dividing: exact small-integer arithmetic.
    scaled_rows = count_rows * float(n_fixed)
    scaled_fixed = (positions - count_rows) * sizes[:, None].astype(float)
    if fixed_is_a:
        numer = _signed_gap(scaled_fixed, scaled_rows, signed_direction)
    else:
        numer = _signed_gap(scaled_rows, scaled_fixed, signed_direction)
    # max(count_a, count_b) >= 1 everywhere on the grid (the first
    # breakpoint already belongs to one sample), so the division needs
    # no guard.
    denom = np.maximum(scaled_rows, scaled_fixed)
    integrand = numer / denom

    if width > int(sizes.min()):
        # At least one padded row: zero out segments ending in padding.
        with np.errstate(invalid="ignore"):
            widths = np.where(np.isfinite(merged[:, 1:]),
                              np.diff(merged, axis=1), 0.0)
    else:
        widths = np.diff(merged, axis=1)
    return np.einsum("ij,ij->i", integrand, widths)


def _gap_integrals_padded(a_data, a_sizes, a_mins, a_maxs,
                          b_data, b_sizes, b_mins, b_maxs,
                          signed_direction: int) -> np.ndarray:
    """Row-wise Eq. (2)/(4) integrals over B independent (a, b) pairs.

    The general kernel for pairs where *both* sides vary per row (no
    shared haystack): a stable sort merges each pair's presorted runs.
    All inputs are padded/sorted per the batch convention.  Returns a
    ``(B,)`` array of normalized distances.
    """
    width_a = a_data.shape[1]
    merged_width = width_a + b_data.shape[1]
    rows = max(a_data.shape[0], b_data.shape[0])
    concat = np.concatenate([
        np.broadcast_to(a_data, (rows, width_a)),
        np.broadcast_to(b_data, (rows, b_data.shape[1])),
    ], axis=1)
    # A stable sort merges the two presorted runs (timsort detects
    # them), yielding each pair's full multiset breakpoint grid.
    order = np.argsort(concat, axis=1, kind="stable")
    merged = np.take_along_axis(concat, order, axis=1)

    # F_a at breakpoint k is the count of a-observations <= merged[k],
    # i.e. the running count of a-origin elements -- identical to
    # searchsorted(a, merged[k], side="right") at every breakpoint
    # that precedes a nonzero-width segment (ties only ever precede
    # zero-width segments, which the integral ignores).
    from_a = order < width_a
    count_a = np.cumsum(from_a, axis=1, dtype=np.float64)[:, :-1]
    count_b = np.arange(1.0, merged_width) - count_a

    a_sizes = np.broadcast_to(a_sizes, (rows,)).astype(float)
    b_sizes = np.broadcast_to(b_sizes, (rows,)).astype(float)
    scaled_a = count_a * b_sizes[:, None]
    scaled_b = count_b * a_sizes[:, None]
    numer = _signed_gap(scaled_a, scaled_b, signed_direction)
    denom = np.maximum(scaled_a, scaled_b)
    integrand = numer / denom

    # Segment k spans [merged[k], merged[k+1]); it contributes iff its
    # right endpoint is a real observation (padding is +inf, so real
    # points never follow padded ones).
    with np.errstate(invalid="ignore"):
        widths = np.where(np.isfinite(merged[:, 1:]),
                          np.diff(merged, axis=1), 0.0)
    integrals = np.einsum("ij,ij->i", integrand, widths)
    return _normalize(integrals, a_mins, a_maxs, b_mins, b_maxs)


def batch_gap_integrals(batch_a: SortedSampleBatch, batch_b: SortedSampleBatch,
                        *, signed_direction: int = 0) -> np.ndarray:
    """Row-wise distances between two equal-length batches.

    Row ``i`` of the result is the Eq. (2) (``signed_direction=0``) or
    Eq. (4) (``+1``/``-1``) distance between ``batch_a``'s and
    ``batch_b``'s ``i``-th samples -- the vectorized form of a
    ``[dist(a, b) for a, b in zip(A, B)]`` loop.
    """
    if batch_a.n != batch_b.n:
        raise InvalidSampleError(
            f"row-wise batches must match in length: {batch_a.n} != {batch_b.n}"
        )
    if batch_a.n == 0:
        return np.empty(0)
    return _gap_integrals_padded(
        batch_a.data, batch_a.sizes, batch_a.mins, batch_a.maxs,
        batch_b.data, batch_b.sizes, batch_b.mins, batch_b.maxs,
        signed_direction,
    )


def _as_reference(reference, assume_sorted: bool,
                  nonfinite: str = "reject") -> np.ndarray:
    ref = as_sample(reference, nonfinite=nonfinite)
    return ref if assume_sorted else np.sort(ref)


def one_vs_many_distances(batch: SortedSampleBatch, reference, *,
                          signed_direction: int = 0,
                          assume_sorted: bool = False,
                          nonfinite: str = "reject") -> np.ndarray:
    """Distance of every batch sample to one fixed reference sample.

    This is the online-filter kernel: ``batch`` holds the fleet's
    observed windows (the ``a`` side of Eq. (4)) and ``reference`` the
    learned criteria ECDF.  With ``assume_sorted=True`` the reference
    (e.g. a cached criteria, already sorted) is used as-is.
    ``nonfinite="mask"`` drops NaN/Inf entries of the reference instead
    of rejecting it (``assume_sorted`` implies the reference is already
    clean, so masking only applies to the unsorted path).
    """
    ref = _as_reference(reference, assume_sorted, nonfinite)
    if batch.n == 0:
        return np.empty(0)
    # Chunk rows so the (rows, width + ref.size) kernel intermediates
    # stay cache-friendly and bounded even against a huge pooled
    # reference (e.g. a criteria pooled from a whole fleet).
    merged_width = batch.width + ref.size
    block = max(1, _CHUNK_ELEMENTS // max(merged_width, 1))
    if batch.n <= block:
        integrals = _gap_integrals_vs_fixed(
            ref, batch.data, batch.sizes, signed_direction, fixed_is_a=False,
        )
    else:
        integrals = np.concatenate([
            _gap_integrals_vs_fixed(
                ref, batch.data[start:start + block],
                batch.sizes[start:start + block],
                signed_direction, fixed_is_a=False,
            )
            for start in range(0, batch.n, block)
        ])
    return _normalize(integrals, batch.mins, batch.maxs, ref[0], ref[-1])


def one_vs_many_similarities(batch: SortedSampleBatch, reference, *,
                             signed_direction: int = 0,
                             assume_sorted: bool = False,
                             nonfinite: str = "reject") -> np.ndarray:
    """``1 - one_vs_many_distances`` (Eq. (3) / Eq. (4) similarities)."""
    return 1.0 - one_vs_many_distances(
        batch, reference, signed_direction=signed_direction,
        assume_sorted=assume_sorted, nonfinite=nonfinite,
    )


def landmark_similarities(batch: SortedSampleBatch,
                          landmark_batch: SortedSampleBatch) -> np.ndarray:
    """Eq. (3) similarity of every batch row to each landmark row.

    The cross-set kernel of the incremental criteria engine: instead of
    the full ``O(n^2)`` pairwise matrix, score all ``n`` rows against
    ``L << n`` landmark rows (one chunked one-vs-many pass per
    landmark), giving the ``(n, L)`` similarity profile that seeds the
    approximate medoid.  A row that *is* a landmark scores exactly 1.0
    against itself (zero gap integral), so no diagonal fix-up is
    needed.
    """
    out = np.empty((batch.n, landmark_batch.n))
    for j in range(landmark_batch.n):
        out[:, j] = one_vs_many_similarities(
            batch, landmark_batch.row(j), assume_sorted=True)
    return out


def _integrand_table(m: int) -> np.ndarray:
    """Eq. (2) integrand for every cumulative-count state of an m-vs-m pair.

    ``table[ca, cb] = |ca - cb| / max(ca, cb)`` (the sizes cancel for
    equal-length samples).  Each entry rounds exactly once, so the
    table is at least as accurate as the reference's two CDF divisions
    plus subtraction.  ``table[0, 0]`` is 0 -- the state before any
    observation never spans a nonzero-width segment.
    """
    grade = np.arange(m + 1, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        table = (np.abs(grade[:, None] - grade[None, :])
                 / np.maximum(np.maximum(grade[:, None], grade[None, :]), 1.0))
    return np.ascontiguousarray(table)


def _pairwise_integrals_uniform_c(data: np.ndarray) -> np.ndarray | None:
    """Unnormalized pairwise integrals via the compiled merge kernel."""
    lib = _cmerge.load()
    if lib is None:
        return None
    n, m = data.shape
    padded = np.full((n, m + 1), _PAD)
    padded[:, :m] = data
    out = np.zeros((n, n))
    lib.pairwise_gap_integrals(padded, n, m, _integrand_table(m), out)
    return out


def _pairwise_integrals_uniform(data: np.ndarray) -> np.ndarray:
    """Unnormalized pairwise integrals for ``(n, m)`` uniform sorted rows.

    Abel summation: on a pair's merged grid, ``sum_k f_k * (x_{k+1} -
    x_k)`` rearranges to a per-observation sum ``sum_e x_e *
    (F(before e) - F(after e))`` (the boundary states contribute zero
    because ``F(0, 0) = F(m, m) = 0``).  Splitting the observations by
    origin sample makes the pair integral ``terms[i, j] + terms[j, i]``
    where ``terms[i, j]`` sums over sample ``j``'s observations against
    fixed sample ``i``.

    One global stable argsort fixes the merge order of *every* pair at
    once (within a tie, lower row index first -- consistently, for all
    pairs).  Per fixed row ``i``, a cumulative mark table gives each
    observation's count of preceding ``i``-observations with one
    gather, and a second gather reads the precomputed jump
    ``F(before) - F(after)`` off the integrand table, leaving a single
    einsum per row block.  No ``(n, 2m)`` intermediate is ever built.
    """
    n, m = data.shape
    flat = np.ascontiguousarray(data).ravel()
    order = np.argsort(flat, kind="stable")
    total = flat.size
    ranks = np.empty(total, dtype=np.intp)
    ranks[order] = np.arange(total, dtype=np.intp)
    ranks = ranks.reshape(n, m)

    table = _integrand_table(m)
    # jump[c, u] = F(c, u) - F(c, u+1): the drop caused by the (u+1)-th
    # moving-side observation arriving while the fixed side holds at c.
    jump = np.ascontiguousarray(table[:, :-1] - table[:, 1:])
    cols = np.arange(m, dtype=np.intp)
    count_dtype = np.int16 if m < 30000 else np.int64
    marks = np.zeros(total + 1, dtype=count_dtype)
    terms = np.empty((n, n))
    for i in range(n):
        marks[ranks[i] + 1] = 1
        below = np.cumsum(marks, dtype=count_dtype)
        preceding = below[ranks]          # i-observations before each obs
        terms[i] = np.einsum("ij,ij->i", jump[preceding, cols], data)
        marks[ranks[i] + 1] = 0
    return terms + terms.T


def pairwise_distances(batch: SortedSampleBatch) -> np.ndarray:
    """Full symmetric matrix of Eq. (2) distances (zero diagonal).

    Uniform-length batches dispatch to the compiled merge kernel when
    available, else to the table-driven Abel-summation kernel; ragged
    batches fall back to row blocks of the general kernel (row ``i``
    scored against all ``j > i`` per call).  All paths produce the same
    integrals to float64 accumulation error.
    """
    n = batch.n
    data, sizes, mins, maxs = batch.data, batch.sizes, batch.mins, batch.maxs
    if n > 1 and batch.width > 0 and int(sizes.min()) == batch.width:
        integrals = _pairwise_integrals_uniform_c(data)
        if integrals is None:
            integrals = _pairwise_integrals_uniform(data)
        out = _normalize(integrals, mins[:, None], maxs[:, None],
                         mins[None, :], maxs[None, :])
        np.fill_diagonal(out, 0.0)
        return out
    out = np.zeros((n, n), dtype=float)
    for i in range(n - 1):
        rest = slice(i + 1, n)
        integrals = _gap_integrals_vs_fixed(
            batch.row(i), data[rest], sizes[rest], 0, fixed_is_a=True,
        )
        row = _normalize(integrals, mins[i], maxs[i], mins[rest], maxs[rest])
        out[i, rest] = row
        out[rest, i] = row
    return out


def pairwise_similarities(batch: SortedSampleBatch) -> np.ndarray:
    """Full symmetric Eq. (3) similarity matrix (unit diagonal)."""
    return 1.0 - pairwise_distances(batch)
