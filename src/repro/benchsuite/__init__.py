"""The Table 2 benchmark set and its synthetic execution engine."""

from repro.benchsuite.base import (
    BenchmarkKind,
    BenchmarkResult,
    BenchmarkSpec,
    E2eProfile,
    MetricSpec,
    Phase,
    measure_metric,
    run_benchmark,
)
from repro.benchsuite.faults import FaultInjectingRunner
from repro.benchsuite.multinode import (
    PairScanResult,
    run_all_pair_scan,
    run_group_collective,
)
from repro.benchsuite.runner import StepWindow, SuiteRunner
from repro.benchsuite.suite import (
    e2e_suite,
    full_suite,
    micro_suite,
    multi_node_suite,
    single_node_suite,
    suite_by_name,
    total_duration_minutes,
    total_metric_count,
)

__all__ = [
    "BenchmarkKind",
    "BenchmarkResult",
    "BenchmarkSpec",
    "E2eProfile",
    "FaultInjectingRunner",
    "MetricSpec",
    "PairScanResult",
    "Phase",
    "StepWindow",
    "SuiteRunner",
    "e2e_suite",
    "full_suite",
    "measure_metric",
    "micro_suite",
    "multi_node_suite",
    "run_all_pair_scan",
    "run_benchmark",
    "run_group_collective",
    "single_node_suite",
    "suite_by_name",
    "total_duration_minutes",
    "total_metric_count",
]
