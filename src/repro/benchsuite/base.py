"""Benchmark abstractions and the synthetic measurement model.

A :class:`BenchmarkSpec` describes one entry of the paper's Table 2:
its phase (single-node vs. multi-node), kind (micro vs. end-to-end),
nominal duration, the hardware components it stresses, and one or more
:class:`MetricSpec` outputs.

Because no GPU fleet is available offline, running a benchmark samples
from a *measurement model* instead of executing kernels: the healthy
metric value is scaled by the node's component-health multiplier, then
perturbed by run-to-run variation, per-step noise and -- for
end-to-end benchmarks -- a warm-up transient plus a periodic
data-loading pattern.  The Validator only ever sees the emitted
samples, exactly as it would see real benchmark output.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.measurement import MetricWindow
from repro.exceptions import BenchmarkError
from repro.hardware.components import Component
from repro.hardware.node import Node
from repro.hardware.sku import performance_factor

__all__ = [
    "BenchmarkKind",
    "Phase",
    "MetricSpec",
    "E2eProfile",
    "BenchmarkSpec",
    "BenchmarkResult",
    "measure_metric",
    "run_benchmark",
]


class BenchmarkKind(str, enum.Enum):
    """Micro (component-wise) vs. end-to-end (workload) benchmark."""

    MICRO = "micro"
    E2E = "e2e"


class Phase(str, enum.Enum):
    """Execution phase (paper §4): single-node first, then multi-node."""

    SINGLE_NODE = "single-node"
    MULTI_NODE = "multi-node"


@dataclass(frozen=True)
class MetricSpec:
    """One measured metric of a benchmark.

    Attributes
    ----------
    name:
        Metric identifier, unique within the benchmark.
    unit:
        Display unit (GB/s, TFLOPS, samples/s, us, ...).
    higher_is_better:
        Polarity; latency-like metrics set this to False.
    base_value:
        Healthy-node mean.
    noise_cv:
        Per-step relative noise within one run.
    run_cv:
        Run-to-run relative variation (same node, repeated runs).
    node_cv:
        Stable cross-node variation of this metric (silicon lottery);
        the per-node factor is deterministic in the node id so repeated
        runs on one node see the same offset.
    series_length:
        Number of samples per run (1 for single-value micros).
    sensitivity:
        Component exponents; falls back to the benchmark-level map
        when empty.
    """

    name: str
    unit: str
    higher_is_better: bool = True
    base_value: float = 1.0
    noise_cv: float = 0.01
    run_cv: float = 0.004
    node_cv: float = 0.003
    series_length: int = 1
    sensitivity: dict[Component, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.base_value <= 0:
            raise BenchmarkError(f"metric {self.name!r} needs a positive base value")
        if self.series_length < 1:
            raise BenchmarkError(f"metric {self.name!r} needs series_length >= 1")


@dataclass(frozen=True)
class E2eProfile:
    """Shape of an end-to-end training-throughput series.

    Attributes
    ----------
    warmup_steps:
        True transient length: early steps ramp up as allocators and
        caches warm (this is what Appendix B's parameter search must
        discover and skip).
    period:
        Data-loading cycle length in steps.
    seasonal_amplitude:
        Relative amplitude of the periodic pattern.
    ramp_depth:
        How far below steady state the first step sits (0.3 = 30% low).
    """

    warmup_steps: int = 64
    period: int = 48
    seasonal_amplitude: float = 0.008
    ramp_depth: float = 0.35

    def shape(self, n_steps: int) -> np.ndarray:
        """Deterministic multiplicative shape of a run of ``n_steps``."""
        steps = np.arange(n_steps)
        ramp = 1.0 - self.ramp_depth * np.exp(-3.0 * steps / max(self.warmup_steps, 1))
        seasonal = 1.0 + self.seasonal_amplitude * np.sin(
            2.0 * np.pi * steps / max(self.period, 1)
        )
        return ramp * seasonal


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark of the validation set (one row of Table 2)."""

    name: str
    kind: BenchmarkKind
    phase: Phase
    duration_minutes: float
    sensitivity: dict[Component, float]
    metrics: tuple[MetricSpec, ...]
    e2e_profile: E2eProfile | None = None
    description: str = ""

    def __post_init__(self):
        if self.duration_minutes <= 0:
            raise BenchmarkError(f"benchmark {self.name!r} needs a positive duration")
        if not self.metrics:
            raise BenchmarkError(f"benchmark {self.name!r} declares no metrics")
        names = [m.name for m in self.metrics]
        if len(names) != len(set(names)):
            raise BenchmarkError(f"benchmark {self.name!r} has duplicate metric names")
        if self.kind is BenchmarkKind.E2E and self.e2e_profile is None:
            raise BenchmarkError(
                f"end-to-end benchmark {self.name!r} needs an e2e_profile"
            )

    def metric(self, name: str) -> MetricSpec:
        """Metric lookup by name."""
        for spec in self.metrics:
            if spec.name == name:
                return spec
        raise KeyError(f"benchmark {self.name!r} has no metric {name!r}")

    def metric_sensitivity(self, metric: MetricSpec) -> dict[Component, float]:
        """Effective sensitivity map for one metric."""
        return metric.sensitivity or self.sensitivity


class BenchmarkResult:
    """Output of one benchmark run on one node: a set of metric windows.

    Each metric is a :class:`~repro.core.measurement.MetricWindow`
    carrying its own provenance -- polarity, sanitization state,
    quarantine verdict, recorded faults -- so downstream layers read
    the verdict off the data instead of tracking it out-of-band.

    The dict-shaped constructor (``metrics=``/``quarantined=``) is the
    compatibility surface for callers that only have raw arrays; it
    wraps them into windows on the spot.  ``quarantined`` metrics'
    raw series stay readable for forensics, but the Validator must
    neither score nor learn from them.

    ``sku`` is the run's hardware-class provenance.  When ``windows=``
    are given and no explicit ``sku``, it is adopted from the first
    window; in dict mode it stamps every wrapped window, defaulting to
    the ``"unknown"`` bucket.
    """

    __slots__ = ("benchmark", "node_id", "sku", "windows")

    def __init__(self, benchmark: str, node_id: str,
                 metrics: dict[str, np.ndarray] | None = None,
                 quarantined: tuple[str, ...] = (), *,
                 windows: tuple[MetricWindow, ...] | None = None,
                 sku: str | None = None):
        self.benchmark = benchmark
        self.node_id = node_id
        if windows is not None:
            if metrics is not None:
                raise BenchmarkError(
                    "pass either metrics= or windows=, not both")
            self.windows = tuple(windows)
            if sku is None:
                sku = self.windows[0].sku if self.windows else "unknown"
        else:
            if sku is None:
                sku = "unknown"
            quarantined_set = set(quarantined)
            self.windows = tuple(
                MetricWindow(node_id=node_id, benchmark=benchmark,
                             metric=name, values=values, sku=sku,
                             quarantined=name in quarantined_set)
                for name, values in (metrics or {}).items())
        self.sku = sku

    def __repr__(self) -> str:
        return (f"BenchmarkResult(benchmark={self.benchmark!r}, "
                f"node_id={self.node_id!r}, "
                f"metrics={sorted(w.metric for w in self.windows)})")

    @property
    def metrics(self) -> dict[str, np.ndarray]:
        """Metric name -> raw sample array (window order preserved)."""
        return {window.metric: window.values for window in self.windows}

    @property
    def quarantined(self) -> tuple[str, ...]:
        """Names of metrics whose window supports no verdict."""
        return tuple(w.metric for w in self.windows if w.quarantined)

    @property
    def sanitized(self) -> bool:
        """True when every window crossed the sanitization layer."""
        return bool(self.windows) and all(w.sanitized for w in self.windows)

    def window(self, metric_name: str) -> MetricWindow:
        """The full provenance-carrying window for one metric."""
        for window in self.windows:
            if window.metric == metric_name:
                return window
        raise KeyError(
            f"run of {self.benchmark!r} has no metric {metric_name!r}")

    def sample(self, metric_name: str) -> np.ndarray:
        """Raw sample array for one metric."""
        return self.window(metric_name).values

    def with_windows(self,
                     windows: tuple[MetricWindow, ...]) -> "BenchmarkResult":
        """Same run identity, new windows (sanitization, corruption)."""
        return BenchmarkResult(benchmark=self.benchmark,
                               node_id=self.node_id, windows=tuple(windows),
                               sku=self.sku)


def _node_metric_factor(node: Node, spec: BenchmarkSpec, metric: MetricSpec) -> float:
    """Stable silicon-lottery factor for (node, benchmark, metric).

    Derived deterministically from the identifiers so the same node
    measures consistently across runs while different nodes spread by
    ``metric.node_cv`` -- the cross-node variability the paper cites as
    a criteria-learning challenge (§2.3).
    """
    if metric.node_cv == 0.0:
        return 1.0
    key = f"{node.node_id}/{spec.name}/{metric.name}".encode()
    digest = zlib.crc32(key)  # stable across processes, unlike hash()
    draw = np.random.default_rng(digest).standard_normal()
    return 1.0 + metric.node_cv * float(draw)


def measure_metric(spec: BenchmarkSpec, metric: MetricSpec, node: Node,
                   rng: np.random.Generator, *,
                   n_steps: int | None = None) -> np.ndarray:
    """Sample one metric of one benchmark on one node.

    The healthy value is scaled by the node's performance multiplier
    for the metric's component sensitivities, times the node's SKU
    throughput factor (1.0 for the baseline and unregistered classes);
    latency metrics divide instead of multiply so degradation always
    means "worse" and faster silicon always means "better".
    """
    multiplier = node.performance_multiplier(spec.metric_sensitivity(metric))
    multiplier *= _node_metric_factor(node, spec, metric)
    multiplier *= performance_factor(node.sku)
    run_factor = 1.0 + metric.run_cv * float(rng.standard_normal())
    length = int(n_steps) if n_steps is not None else metric.series_length
    if length < 1:
        raise BenchmarkError("n_steps must be at least 1")

    if metric.higher_is_better:
        level = metric.base_value * multiplier
    else:
        level = metric.base_value / max(multiplier, 1e-6)
    level *= max(run_factor, 0.01)

    noise = 1.0 + metric.noise_cv * rng.standard_normal(length)
    series = level * noise
    if spec.e2e_profile is not None and metric.higher_is_better:
        series = series * spec.e2e_profile.shape(length)
    return np.maximum(series, 1e-9)


def run_benchmark(spec: BenchmarkSpec, node: Node, rng: np.random.Generator,
                  *, n_steps: int | None = None) -> BenchmarkResult:
    """Run (simulate) one benchmark on one node; all metrics sampled.

    Windows are born with their metric's true polarity, so Eq. (4)
    direction decisions downstream come from measurement provenance,
    not from re-looking-up the spec.
    """
    windows = tuple(
        MetricWindow(
            node_id=node.node_id, benchmark=spec.name, metric=metric.name,
            values=measure_metric(spec, metric, node, rng, n_steps=n_steps),
            higher_is_better=metric.higher_is_better, sku=node.sku)
        for metric in spec.metrics
    )
    return BenchmarkResult(benchmark=spec.name, node_id=node.node_id,
                           windows=windows, sku=node.sku)
