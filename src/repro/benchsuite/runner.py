"""Benchmark execution over fleets.

:class:`SuiteRunner` drives benchmarks against (simulated) nodes the
same way the Validator drives them against VMs: per node, per
benchmark, producing :class:`~repro.benchsuite.base.BenchmarkResult`
objects.  It also implements the measurement-window policy for
end-to-end benchmarks -- dropping warm-up steps and keeping a bounded
measurement window -- which is where Appendix B's tuned parameters
plug in.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.benchsuite.base import (
    BenchmarkKind,
    BenchmarkResult,
    BenchmarkSpec,
    run_benchmark,
)
from repro.core.measurement import PipelineStats
from repro.exceptions import BenchmarkError
from repro.hardware.node import Node

__all__ = ["StepWindow", "SuiteRunner"]


@dataclass(frozen=True)
class StepWindow:
    """Measurement window for an end-to-end benchmark.

    ``warmup`` steps are discarded and the following ``measure`` steps
    are kept -- the (w, n) parameters of Appendix B.
    """

    warmup: int
    measure: int

    def __post_init__(self):
        if self.warmup < 0 or self.measure < 1:
            raise BenchmarkError(
                f"invalid step window (warmup={self.warmup}, measure={self.measure})"
            )

    @property
    def total_steps(self) -> int:
        """Steps that must be executed to fill this window."""
        return self.warmup + self.measure

    def apply(self, series: np.ndarray) -> np.ndarray:
        """Slice a raw step series down to the measurement window."""
        if series.size < self.total_steps:
            raise BenchmarkError(
                f"series of {series.size} steps is shorter than window "
                f"({self.warmup}+{self.measure})"
            )
        return series[self.warmup:self.total_steps]


class SuiteRunner:
    """Executes benchmarks on nodes with optional per-benchmark windows.

    Measurement noise is drawn from a *per-(node, benchmark) child
    stream* derived from the seed, the node id, the benchmark name and
    a per-pair repeat counter -- never from one shared stream.  A
    node's result therefore does not depend on how many other nodes
    ran before it: sequential sweeps, reordered sweeps and parallel
    sweeps (see :mod:`repro.service.pool`) produce bit-identical
    results, while repeated runs on one node still vary run-to-run.

    Parameters
    ----------
    seed:
        Root seed for the measurement-noise streams.
    windows:
        Benchmark name -> :class:`StepWindow`; end-to-end benchmarks
        without an entry run their default series length and keep all
        steps after the spec's nominal warm-up.
    sanitizer:
        Optional :class:`repro.quality.Sanitizer`.  When set, every
        result passes through telemetry sanitization before leaving
        :meth:`run` -- implausible values are quarantined with
        provenance instead of flowing into verdicts.
    stats:
        A :class:`~repro.core.measurement.PipelineStats` instance fed
        with per-stage execute/sanitize counters and timings; shared
        with the Validator's facade for ``pipeline_stats()``.
    """

    def __init__(self, *, seed: int = 0,
                 windows: dict[str, StepWindow] | None = None,
                 sanitizer=None, stats: PipelineStats | None = None):
        self.seed = int(seed)
        self.windows = dict(windows or {})
        self.sanitizer = sanitizer
        self.stats = stats if stats is not None else PipelineStats()
        self._repeat_counts: dict[tuple[str, str], int] = {}

    def _measurement_rng(self, spec: BenchmarkSpec,
                         node: Node) -> np.random.Generator:
        """Child generator for one (node, benchmark) execution.

        The entropy is keyed on stable identifiers (crc32, like the
        silicon-lottery factor in :mod:`repro.benchsuite.base`) plus a
        repeat counter, so the i-th run of a benchmark on a node draws
        the same noise no matter which other (node, benchmark) pairs
        ran before or concurrently.
        """
        key = (node.node_id, spec.name)
        repeat = self._repeat_counts.get(key, 0)
        self._repeat_counts[key] = repeat + 1
        entropy = (self.seed,
                   zlib.crc32(node.node_id.encode()),
                   zlib.crc32(spec.name.encode()),
                   repeat)
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def reset_streams(self) -> None:
        """Forget repeat counters: the next run of every (node,
        benchmark) pair draws its first-run noise again."""
        self._repeat_counts.clear()

    def set_window(self, benchmark_name: str, window: StepWindow) -> None:
        """Install a tuned measurement window for one benchmark."""
        self.windows[benchmark_name] = window

    def window_for(self, spec: BenchmarkSpec) -> StepWindow | None:
        """Effective measurement window for one benchmark.

        Tuned windows take precedence; otherwise end-to-end benchmarks
        get a conservative default that discards twice the nominal
        warm-up transient (validation must never compare warm-up steps
        against criteria -- §3.4's repeatability guideline 1) and keeps
        the remaining steps.  Micro-benchmarks run unwindowed.
        """
        if spec.name in self.windows:
            return self.windows[spec.name]
        if spec.kind is not BenchmarkKind.E2E or spec.e2e_profile is None:
            return None
        total = max(m.series_length for m in spec.metrics)
        warmup = min(2 * spec.e2e_profile.warmup_steps, total - 1)
        return StepWindow(warmup=warmup, measure=total - warmup)

    def _execute(self, spec: BenchmarkSpec, node: Node) -> BenchmarkResult:
        """Raw execution of one benchmark, window policy applied.

        Subclasses that corrupt executions (fault injection) override
        this, not :meth:`run`, so their corruption happens *before*
        sanitization -- exactly where real telemetry faults originate.
        """
        window = self.window_for(spec)
        rng = self._measurement_rng(spec, node)
        if spec.kind is BenchmarkKind.E2E and window is not None:
            raw = run_benchmark(spec, node, rng, n_steps=window.total_steps)
            return raw.with_windows(tuple(
                w.with_values(window.apply(w.values)) for w in raw.windows))
        return run_benchmark(spec, node, rng)

    def run(self, spec: BenchmarkSpec, node: Node) -> BenchmarkResult:
        """One benchmark on one node: execute, then sanitize."""
        with self.stats.timed("execute"):
            result = self._execute(spec, node)
        if self.sanitizer is not None:
            with self.stats.timed("sanitize"):
                result = self.sanitizer.sanitize_result(spec, result)
        return result

    def run_on_nodes(self, spec: BenchmarkSpec, nodes) -> dict[str, BenchmarkResult]:
        """One benchmark across many nodes; node id -> result."""
        return {node.node_id: self.run(spec, node) for node in nodes}

    def run_repeated(self, spec: BenchmarkSpec, node: Node,
                     repeats: int) -> list[BenchmarkResult]:
        """Repeated runs on one node (repeatability measurements)."""
        if repeats < 1:
            raise BenchmarkError("repeats must be at least 1")
        return [self.run(spec, node) for _ in range(repeats)]

    def duration_minutes(self, spec: BenchmarkSpec) -> float:
        """Wall-clock cost of one run, shrunk by a tuned window.

        An end-to-end benchmark's cost scales with the number of steps
        actually executed relative to its default series length.
        """
        window = self.window_for(spec)
        if spec.kind is BenchmarkKind.E2E and window is not None:
            default_steps = max(m.series_length for m in spec.metrics)
            scale = window.total_steps / default_steps
            return spec.duration_minutes * min(scale, 1.0)
        return spec.duration_minutes
