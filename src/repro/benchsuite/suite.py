"""The full validation benchmark set (paper §4, Table 2).

Twenty-four benchmarks in two phases:

* **Single-node phase** -- 14 micro-benchmarks covering individual
  components and common workload patterns, plus 7 end-to-end training
  benchmarks over the representative model families (ResNet, DenseNet,
  VGG, LSTM, BERT, GPT-2, and a long-running GPT-2-large stress run).
* **Multi-node phase** -- all-pair RDMA scans, GPU collective
  communication, and multi-node training.

Healthy metric values approximate an A100-80GB 8-GPU VM with 8x200 Gb/s
InfiniBand.  Component sensitivities encode *which* benchmark catches
*which* gray failure: the dominant component carries weight ~1.0 and
cross-terms are kept small enough that a moderate defect on a foreign
component stays inside the similarity threshold -- mirroring the
paper's observation that many regressions surface in exactly one
benchmark (§2.3).  Variance parameters (per-run, per-node) are
calibrated against the repeatability column of Table 6.
"""

from __future__ import annotations

from repro.benchsuite.base import (
    BenchmarkKind,
    BenchmarkSpec,
    E2eProfile,
    MetricSpec,
    Phase,
)
from repro.hardware.components import Component as C

__all__ = [
    "full_suite",
    "suite_by_name",
    "single_node_suite",
    "multi_node_suite",
    "micro_suite",
    "e2e_suite",
    "total_metric_count",
    "total_duration_minutes",
]


def _metric(name, unit, base, *, lower_better=False, noise=0.01,
            run_cv=0.003, node_cv=0.003, steps=1, sens=None):
    """Terse MetricSpec constructor for the registry below."""
    return MetricSpec(
        name=name,
        unit=unit,
        higher_is_better=not lower_better,
        base_value=base,
        noise_cv=noise,
        run_cv=run_cv,
        node_cv=node_cv,
        series_length=steps,
        sensitivity=sens or {},
    )


_E2E_STEPS = 384  # default measured steps for validation runs
_E2E_FULL_STEPS = 3144  # 72 warmup + 3072 measurement (Table 5 baseline)

_CNN_PROFILE = E2eProfile(warmup_steps=72, period=48, seasonal_amplitude=0.010)
_TRANSFORMER_PROFILE = E2eProfile(warmup_steps=64, period=64, seasonal_amplitude=0.006)
_RNN_PROFILE = E2eProfile(warmup_steps=56, period=40, seasonal_amplitude=0.012)


def _build_suite() -> tuple[BenchmarkSpec, ...]:
    micro = Phase.SINGLE_NODE, BenchmarkKind.MICRO
    e2e = Phase.SINGLE_NODE, BenchmarkKind.E2E
    multi_micro = Phase.MULTI_NODE, BenchmarkKind.MICRO
    multi_e2e = Phase.MULTI_NODE, BenchmarkKind.E2E

    def spec(name, phase_kind, minutes, sens, metrics, profile=None, desc=""):
        phase, kind = phase_kind
        return BenchmarkSpec(
            name=name, kind=kind, phase=phase, duration_minutes=minutes,
            sensitivity=sens, metrics=tuple(metrics), e2e_profile=profile,
            description=desc,
        )

    return (
        # ------------------------- micro: computation -------------------------
        spec("kernel-launch", micro, 3.0,
             {C.GPU_COMPUTE: 0.2, C.CPU: 0.3},
             [_metric("launch_overhead_us", "us", 3.2, lower_better=True,
                      noise=0.01, run_cv=0.006, node_cv=0.004),
              _metric("launch_wall_us", "us", 3.7, lower_better=True,
                      noise=0.01, run_cv=0.006, node_cv=0.004)],
             desc="CUDA kernel launch overhead"),
        spec("gemm-flops", micro, 12.0,
             {C.GPU_COMPUTE: 1.0, C.GPU_MEMORY_BW: 0.1},
             [_metric("fp64_tflops", "TFLOPS", 19.3, run_cv=0.0035, node_cv=0.0035),
              _metric("tf32_tflops", "TFLOPS", 148.0, run_cv=0.0035, node_cv=0.0035),
              _metric("fp16_tflops", "TFLOPS", 288.0, run_cv=0.0035, node_cv=0.0035),
              _metric("bf16_tflops", "TFLOPS", 280.0, run_cv=0.0035, node_cv=0.0035)],
             desc="Dense GEMM peak throughput (cutlass/rocBLAS style)"),
        spec("cublas-function", micro, 10.0,
             {C.GPU_COMPUTE: 1.0},
             [_metric("gemm_4096_tflops", "TFLOPS", 142.0, run_cv=0.004, node_cv=0.004),
              _metric("gemm_8192_tflops", "TFLOPS", 150.0, run_cv=0.004, node_cv=0.004),
              _metric("batched_gemm_tflops", "TFLOPS", 121.0, run_cv=0.004,
                      node_cv=0.004)],
             desc="cuBLAS kernels with workload-profiled shapes"),
        spec("cudnn-function", micro, 10.0,
             {C.GPU_COMPUTE: 0.9, C.GPU_MEMORY_BW: 0.3},
             [_metric("conv_fwd_tflops", "TFLOPS", 130.0, run_cv=0.005, node_cv=0.005),
              _metric("conv_bwd_tflops", "TFLOPS", 118.0, run_cv=0.005, node_cv=0.005)],
             desc="cuDNN convolution kernels with common shapes"),
        spec("gpu-burn", micro, 15.0,
             {C.GPU_COMPUTE: 1.0},
             [_metric("sustained_tflops", "TFLOPS", 268.0, noise=0.006,
                      run_cv=0.005, node_cv=0.005, steps=60)],
             desc="Sustained-load stress; catches thermal instability"),
        # ------------------------ micro: communication ------------------------
        spec("cpu-memory-latency", micro, 5.0,
             {C.DRAM: 1.0, C.CPU: 0.4},
             [_metric("memory_latency_ns", "ns", 94.0, lower_better=True,
                      noise=0.012, run_cv=0.0025, node_cv=0.0025),
              _metric("memory_bw_gbs", "GB/s", 190.0, run_cv=0.0025, node_cv=0.0025)],
             desc="Intel MLC style CPU memory latency/bandwidth"),
        spec("mem-bw", micro, 4.0,
             {C.PCIE: 1.0},
             [_metric("h2d_bw_gbs", "GB/s", 26.1, run_cv=0.002, node_cv=0.002),
              _metric("d2h_bw_gbs", "GB/s", 24.3, run_cv=0.002, node_cv=0.002)],
             desc="Host-to-device / device-to-host copy bandwidth over PCIe"),
        spec("gpu-copy-bw", micro, 4.0,
             {C.GPU_MEMORY_BW: 1.0},
             [_metric("dtod_bw_gbs", "GB/s", 1290.0, run_cv=0.003, node_cv=0.003)],
             desc="On-device HBM copy bandwidth"),
        spec("nccl-bw-nvlink", micro, 6.0,
             {C.NVLINK: 1.0, C.GPU_MEMORY_BW: 0.1},
             [_metric("allreduce_busbw_gbs", "GB/s", 235.0,
                      run_cv=0.0007, node_cv=0.0007)],
             desc="Single-node 8-GPU all-reduce over NVLink"),
        spec("ib-loopback", micro, 5.0,
             {C.NIC: 1.0},
             [_metric("ib_write_bw_gbs", "GB/s", 24.6,
                      run_cv=0.00025, node_cv=0.00025)],
             desc="InfiniBand HCA loopback RDMA write (perftest)"),
        spec("nccl-bw-ib-single", micro, 6.0,
             {C.IB_LINK: 1.0, C.NIC: 0.12},
             [_metric("allreduce_busbw_gbs", "GB/s", 22.5,
                      run_cv=0.0006, node_cv=0.0006)],
             desc="Single-node all-reduce forced through the IB rail"),
        # -------------------- micro: overlap and sharding ---------------------
        spec("matmul-allreduce-overlap", micro, 8.0,
             {C.OVERLAP_ENGINE: 1.0, C.GPU_COMPUTE: 0.15, C.NVLINK: 0.15},
             [_metric("overlap_tflops", "TFLOPS", 118.0, noise=0.012,
                      run_cv=0.004, node_cv=0.004, steps=120)],
             desc="Concurrent GEMM + all-reduce; exposes L2 interference"),
        spec("sharding-matmul", micro, 8.0,
             {C.GPU_COMPUTE: 0.7, C.NVLINK: 0.12},
             [_metric("sharded_tflops", "TFLOPS", 135.0, noise=0.010,
                      run_cv=0.004, node_cv=0.004, steps=120)],
             desc="Tensor-parallel style sharded matmul"),
        # ------------------------------ micro: disk ---------------------------
        spec("disk-fio", micro, 12.0,
             {C.DISK: 1.0},
             [_metric("seq_read_gbs", "GB/s", 7.0, run_cv=0.006, node_cv=0.006),
              _metric("seq_write_gbs", "GB/s", 3.1, run_cv=0.006, node_cv=0.006),
              _metric("rand_read_iops_k", "kIOPS", 650.0, run_cv=0.008, node_cv=0.008),
              _metric("rand_write_iops_k", "kIOPS", 170.0, run_cv=0.008,
                      node_cv=0.008)],
             desc="fio random/sequential read/write"),
        # ------------------------------ end-to-end ----------------------------
        spec("resnet-models", e2e, 18.0,
             {C.E2E_CNN_PATH: 1.0, C.GPU_COMPUTE: 0.5, C.GPU_MEMORY_BW: 0.2,
              C.PCIE: 0.08, C.CPU: 0.05},
             [_metric("fp32_throughput", "samples/s", 2900.0, noise=0.010,
                      run_cv=0.0035, node_cv=0.0035, steps=_E2E_STEPS),
              _metric("fp16_throughput", "samples/s", 5600.0, noise=0.010,
                      run_cv=0.0035, node_cv=0.0035, steps=_E2E_STEPS)],
             profile=_CNN_PROFILE,
             desc="ResNet-50/101/152 multi-GPU training"),
        spec("densenet-models", e2e, 18.0,
             {C.E2E_CNN_PATH: 0.3, C.GPU_COMPUTE: 0.5, C.GPU_MEMORY_BW: 0.3,
              C.PCIE: 0.08},
             [_metric("fp32_throughput", "samples/s", 1700.0, noise=0.012,
                      run_cv=0.004, node_cv=0.004, steps=_E2E_STEPS),
              _metric("fp16_throughput", "samples/s", 3100.0, noise=0.012,
                      run_cv=0.004, node_cv=0.004, steps=_E2E_STEPS)],
             profile=_CNN_PROFILE,
             desc="DenseNet-169/201 multi-GPU training"),
        spec("vgg-models", e2e, 16.0,
             {C.E2E_CNN_PATH: 0.25, C.GPU_COMPUTE: 0.6, C.GPU_MEMORY_BW: 0.2,
              C.PCIE: 0.08},
             [_metric("fp32_throughput", "samples/s", 1100.0, noise=0.010,
                      run_cv=0.0035, node_cv=0.0035, steps=_E2E_STEPS),
              _metric("fp16_throughput", "samples/s", 2200.0, noise=0.010,
                      run_cv=0.0035, node_cv=0.0035, steps=_E2E_STEPS)],
             profile=_CNN_PROFILE,
             desc="VGG-11/13/16/19 multi-GPU training"),
        spec("lstm-models", e2e, 14.0,
             {C.E2E_RNN_PATH: 1.0, C.GPU_COMPUTE: 0.4, C.GPU_MEMORY_BW: 0.4},
             [_metric("fp32_throughput", "samples/s", 1450.0, noise=0.011,
                      run_cv=0.004, node_cv=0.004, steps=_E2E_STEPS),
              _metric("fp16_throughput", "samples/s", 2600.0, noise=0.011,
                      run_cv=0.004, node_cv=0.004, steps=_E2E_STEPS)],
             profile=_RNN_PROFILE,
             desc="LSTM training with prevalent hidden sizes"),
        spec("bert-models", e2e, 22.0,
             {C.E2E_TRANSFORMER_PATH: 1.0, C.GPU_COMPUTE: 0.5, C.NVLINK: 0.1,
              C.GPU_MEMORY_BW: 0.3, C.PCIE: 0.08},
             [_metric("fp32_throughput", "samples/s", 420.0, noise=0.007,
                      run_cv=0.003, node_cv=0.003, steps=_E2E_STEPS),
              _metric("fp16_throughput", "samples/s", 980.0, noise=0.007,
                      run_cv=0.003, node_cv=0.003, steps=_E2E_STEPS)],
             profile=_TRANSFORMER_PROFILE,
             desc="BERT base/large pre-training steps"),
        spec("gpt-models", e2e, 26.0,
             {C.E2E_TRANSFORMER_PATH: 0.3, C.GPU_COMPUTE: 0.6, C.NVLINK: 0.12,
              C.GPU_MEMORY: 0.2, C.GPU_MEMORY_BW: 0.3},
             [_metric("small_throughput", "samples/s", 155.0, noise=0.008,
                      run_cv=0.003, node_cv=0.003, steps=_E2E_STEPS),
              _metric("large_throughput", "samples/s", 44.0, noise=0.008,
                      run_cv=0.003, node_cv=0.003, steps=_E2E_STEPS)],
             profile=_TRANSFORMER_PROFILE,
             desc="GPT-2 small/large pre-training steps"),
        spec("gpt-stress", e2e, 45.0,
             {C.GPU_COMPUTE: 0.6, C.GPU_MEMORY: 0.8, C.GPU_MEMORY_BW: 0.3},
             [_metric("tokens_per_s_k", "ktokens/s", 152.0, noise=0.006,
                      run_cv=0.005, node_cv=0.005, steps=2 * _E2E_STEPS)],
             profile=_TRANSFORMER_PROFILE,
             desc="Long-running GPT-2-large stress; catches HBM wear"),
        # ------------------------------ multi-node ----------------------------
        spec("all-pair-rdma", multi_micro, 20.0,
             {C.NIC: 0.3, C.IB_LINK: 1.0},
             [_metric("pair_bw_gbs", "GB/s", 24.2, run_cv=0.001, node_cv=0.001)],
             desc="Pairwise RDMA-write scan over the fabric (Appendix A)"),
        spec("multinode-collectives", multi_micro, 18.0,
             {C.NIC: 0.3, C.IB_LINK: 1.0},
             [_metric("allreduce_busbw_gbs", "GB/s", 185.0, run_cv=0.002,
                      node_cv=0.002),
              _metric("allgather_busbw_gbs", "GB/s", 176.0, run_cv=0.002,
                      node_cv=0.002),
              _metric("alltoall_busbw_gbs", "GB/s", 92.0, run_cv=0.004, node_cv=0.004)],
             desc="Multi-node NCCL/RCCL all-reduce, all-gather, all-to-all"),
        spec("multinode-training", multi_e2e, 30.0,
             {C.E2E_TRANSFORMER_PATH: 0.3, C.GPU_COMPUTE: 0.4, C.NIC: 0.3,
              C.IB_LINK: 0.5},
             [_metric("gpt2_throughput", "samples/s", 38.0, noise=0.008,
                      run_cv=0.006, node_cv=0.006, steps=_E2E_STEPS)],
             profile=_TRANSFORMER_PROFILE,
             desc="Multi-node GPT-2 data-parallel training"),
    )


_SUITE: tuple[BenchmarkSpec, ...] = _build_suite()
_BY_NAME = {spec.name: spec for spec in _SUITE}


def full_suite() -> tuple[BenchmarkSpec, ...]:
    """All 24 benchmarks of Table 2, single-node phase first."""
    return _SUITE


def suite_by_name(name: str) -> BenchmarkSpec:
    """Benchmark lookup by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


def single_node_suite() -> tuple[BenchmarkSpec, ...]:
    """Benchmarks of the single-node phase."""
    return tuple(s for s in _SUITE if s.phase is Phase.SINGLE_NODE)


def multi_node_suite() -> tuple[BenchmarkSpec, ...]:
    """Benchmarks of the multi-node phase."""
    return tuple(s for s in _SUITE if s.phase is Phase.MULTI_NODE)


def micro_suite() -> tuple[BenchmarkSpec, ...]:
    """Micro-benchmarks only."""
    return tuple(s for s in _SUITE if s.kind is BenchmarkKind.MICRO)


def e2e_suite() -> tuple[BenchmarkSpec, ...]:
    """End-to-end benchmarks only."""
    return tuple(s for s in _SUITE if s.kind is BenchmarkKind.E2E)


def total_metric_count() -> int:
    """Number of metrics across the whole set."""
    return sum(len(s.metrics) for s in _SUITE)


def total_duration_minutes() -> float:
    """Nominal wall-clock cost of a full-set validation, in minutes."""
    return sum(s.duration_minutes for s in _SUITE)
