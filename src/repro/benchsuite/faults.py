"""Fault-injecting benchmark runner (failure-mode testing).

Real benchmark executions crash, hang and emit garbage: the paper
counts such failures as defects by definition ("Any nodes with
failures or performance regressions are defined as defects").
:class:`FaultInjectingRunner` wraps a :class:`SuiteRunner` and injects
those execution-level failures with configurable probabilities so the
Validator's failure paths can be exercised deterministically:

* ``crash`` -- the benchmark produces no samples (empty array);
* ``hang``  -- the run times out and reports NaN;
* ``garbage`` -- a corrupted metric (zeros).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.benchsuite.base import BenchmarkResult, BenchmarkSpec
from repro.benchsuite.runner import SuiteRunner
from repro.hardware.node import Node

__all__ = ["FaultInjectingRunner"]

_FAULT_KINDS = ("crash", "hang", "garbage")


class FaultInjectingRunner(SuiteRunner):
    """A SuiteRunner that randomly corrupts benchmark executions.

    Parameters
    ----------
    crash_rate, hang_rate, garbage_rate:
        Per-run probabilities of each fault kind; at most one fault
        applies per run.
    fault_nodes:
        Optional set of node ids eligible for faults; ``None`` makes
        every node eligible.
    seed:
        Seeds both the measurement stream (via SuiteRunner) and the
        fault lottery.
    """

    def __init__(self, *, crash_rate: float = 0.0, hang_rate: float = 0.0,
                 garbage_rate: float = 0.0, fault_nodes=None, seed: int = 0,
                 windows=None):
        super().__init__(seed=seed, windows=windows)
        for name, rate in (("crash_rate", crash_rate), ("hang_rate", hang_rate),
                           ("garbage_rate", garbage_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if crash_rate + hang_rate + garbage_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        self.crash_rate = crash_rate
        self.hang_rate = hang_rate
        self.garbage_rate = garbage_rate
        self.fault_nodes = set(fault_nodes) if fault_nodes is not None else None
        self.injected: list[tuple[str, str, str]] = []  # (node, benchmark, kind)

    def _draw_fault(self, spec: BenchmarkSpec, node: Node,
                    repeat: int) -> str | None:
        """Order-independent fault lottery for one execution.

        Keyed like the measurement stream -- (seed, node, benchmark,
        repeat) -- so whether a run faults does not depend on which
        other nodes ran before it, sequentially or in parallel.
        """
        if self.fault_nodes is not None and node.node_id not in self.fault_nodes:
            return None
        entropy = (self.seed + 0x5EED,
                   zlib.crc32(node.node_id.encode()),
                   zlib.crc32(spec.name.encode()),
                   repeat)
        roll = float(np.random.default_rng(np.random.SeedSequence(entropy)).random())
        if roll < self.crash_rate:
            return "crash"
        if roll < self.crash_rate + self.hang_rate:
            return "hang"
        if roll < self.crash_rate + self.hang_rate + self.garbage_rate:
            return "garbage"
        return None

    def run(self, spec: BenchmarkSpec, node: Node) -> BenchmarkResult:
        result = super().run(spec, node)
        repeat = self._repeat_counts[(node.node_id, spec.name)] - 1
        fault = self._draw_fault(spec, node, repeat)
        if fault is None:
            return result
        self.injected.append((node.node_id, spec.name, fault))
        corrupted = {}
        for name, series in result.metrics.items():
            if fault == "crash":
                corrupted[name] = np.array([])
            elif fault == "hang":
                # dtype=float: np.nan cast into an integer series would
                # raise (or wrap to a garbage value on older numpy)
                # instead of producing the intended all-NaN metrics.
                corrupted[name] = np.full_like(series, np.nan, dtype=float)
            else:
                corrupted[name] = np.zeros_like(series)
        return BenchmarkResult(benchmark=spec.name, node_id=node.node_id,
                               metrics=corrupted)
