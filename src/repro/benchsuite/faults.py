"""Fault-injecting benchmark runner (failure-mode testing).

Real benchmark executions crash, hang and emit garbage: the paper
counts such failures as defects by definition ("Any nodes with
failures or performance regressions are defined as defects").
:class:`FaultInjectingRunner` wraps a :class:`SuiteRunner` and injects
those execution-level failures with configurable probabilities so the
Validator's failure paths can be exercised deterministically:

* ``crash`` -- the benchmark produces no samples (empty array);
* ``hang``  -- the run times out and reports NaN;
* ``garbage`` -- a corrupted metric (zeros).

On top of execution faults, the runner injects *telemetry-level*
faults -- the measurement-pipeline corruption the sanitization layer
(:mod:`repro.quality`) exists to absorb.  These leave the node's
actual execution intact and corrupt only what gets reported:

* ``telemetry-nan`` -- scattered NaN/Inf values inside a window;
* ``telemetry-truncate`` -- the window is cut short (a collector died
  mid-run);
* ``telemetry-scale`` -- the whole window is multiplied by a unit
  scale factor (a driver/image update reporting in the wrong unit);
* ``telemetry-duplicate`` -- samples are duplicated (a collector
  replayed part of the stream).

Both lotteries draw from keyed RNG streams -- (seed, node, benchmark,
repeat) -- so injection is order-independent and replay-deterministic:
the same seed reproduces the same faults no matter how the sweep is
ordered or parallelised.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.benchsuite.base import BenchmarkResult, BenchmarkSpec
from repro.benchsuite.runner import SuiteRunner
from repro.hardware.node import Node

__all__ = ["FaultInjectingRunner"]

_FAULT_KINDS = ("crash", "hang", "garbage")
_TELEMETRY_FAULT_KINDS = ("telemetry-nan", "telemetry-truncate",
                          "telemetry-scale", "telemetry-duplicate")


class FaultInjectingRunner(SuiteRunner):
    """A SuiteRunner that randomly corrupts benchmark executions.

    Parameters
    ----------
    crash_rate, hang_rate, garbage_rate:
        Per-run probabilities of each execution fault kind; at most
        one fault applies per run.
    telemetry_nan_rate, telemetry_truncate_rate, telemetry_scale_rate,
    telemetry_duplicate_rate:
        Per-run probabilities of each telemetry fault kind, drawn from
        an independent lottery; a telemetry fault only applies when no
        execution fault fired (a crashed run has no telemetry left to
        corrupt).
    unit_scale_factor:
        Multiplier applied by the ``telemetry-scale`` fault (default
        x1000 -- the classic unit glitch, e.g. ms reported as us).
    fault_nodes:
        Optional set of node ids eligible for faults; ``None`` makes
        every node eligible.
    scale_rates_by_sku:
        When set, each node's telemetry fault rates are multiplied by
        its SKU's ``dirty_rate_scale`` (newer hardware classes ship
        with younger collector stacks and dirtier telemetry); the
        scaled total is clamped to 1.  Execution-fault rates are not
        scaled -- real defects are the fleet's problem, telemetry is
        the pipeline's.
    seed:
        Seeds the measurement stream (via SuiteRunner) and both fault
        lotteries.
    """

    def __init__(self, *, crash_rate: float = 0.0, hang_rate: float = 0.0,
                 garbage_rate: float = 0.0,
                 telemetry_nan_rate: float = 0.0,
                 telemetry_truncate_rate: float = 0.0,
                 telemetry_scale_rate: float = 0.0,
                 telemetry_duplicate_rate: float = 0.0,
                 unit_scale_factor: float = 1000.0,
                 fault_nodes=None, scale_rates_by_sku: bool = False,
                 seed: int = 0, windows=None, sanitizer=None):
        super().__init__(seed=seed, windows=windows, sanitizer=sanitizer)
        rates = (("crash_rate", crash_rate), ("hang_rate", hang_rate),
                 ("garbage_rate", garbage_rate),
                 ("telemetry_nan_rate", telemetry_nan_rate),
                 ("telemetry_truncate_rate", telemetry_truncate_rate),
                 ("telemetry_scale_rate", telemetry_scale_rate),
                 ("telemetry_duplicate_rate", telemetry_duplicate_rate))
        for name, rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if crash_rate + hang_rate + garbage_rate > 1.0:
            raise ValueError("execution fault rates must sum to at most 1")
        telemetry_total = (telemetry_nan_rate + telemetry_truncate_rate
                           + telemetry_scale_rate + telemetry_duplicate_rate)
        if telemetry_total > 1.0:
            raise ValueError("telemetry fault rates must sum to at most 1")
        if unit_scale_factor <= 1.0:
            raise ValueError(
                f"unit_scale_factor must exceed 1, got {unit_scale_factor}")
        self.crash_rate = crash_rate
        self.hang_rate = hang_rate
        self.garbage_rate = garbage_rate
        self.telemetry_nan_rate = telemetry_nan_rate
        self.telemetry_truncate_rate = telemetry_truncate_rate
        self.telemetry_scale_rate = telemetry_scale_rate
        self.telemetry_duplicate_rate = telemetry_duplicate_rate
        self.unit_scale_factor = unit_scale_factor
        self.fault_nodes = set(fault_nodes) if fault_nodes is not None else None
        self.scale_rates_by_sku = scale_rates_by_sku
        self.injected: list[tuple[str, str, str]] = []  # (node, benchmark, kind)

    def _keyed_rng(self, offset: int, spec: BenchmarkSpec, node: Node,
                   repeat: int) -> np.random.Generator:
        """Order-independent child stream for one execution's lottery."""
        entropy = (self.seed + offset,
                   zlib.crc32(node.node_id.encode()),
                   zlib.crc32(spec.name.encode()),
                   repeat)
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def _draw_fault(self, spec: BenchmarkSpec, node: Node,
                    repeat: int) -> str | None:
        """Order-independent execution-fault lottery.

        Keyed like the measurement stream -- (seed, node, benchmark,
        repeat) -- so whether a run faults does not depend on which
        other nodes ran before it, sequentially or in parallel.
        """
        if self.fault_nodes is not None and node.node_id not in self.fault_nodes:
            return None
        roll = float(self._keyed_rng(0x5EED, spec, node, repeat).random())
        if roll < self.crash_rate:
            return "crash"
        if roll < self.crash_rate + self.hang_rate:
            return "hang"
        if roll < self.crash_rate + self.hang_rate + self.garbage_rate:
            return "garbage"
        return None

    def _telemetry_rate_scale(self, node: Node) -> float:
        """Per-node telemetry dirt multiplier (clamped by the caller)."""
        if not self.scale_rates_by_sku:
            return 1.0
        from repro.hardware.sku import gpu_spec
        return gpu_spec(node.sku).dirty_rate_scale

    def _draw_telemetry_fault(self, spec: BenchmarkSpec, node: Node,
                              repeat: int) -> str | None:
        """Independent lottery for telemetry-level corruption."""
        if self.fault_nodes is not None and node.node_id not in self.fault_nodes:
            return None
        scale = self._telemetry_rate_scale(node)
        rates = (self.telemetry_nan_rate, self.telemetry_truncate_rate,
                 self.telemetry_scale_rate, self.telemetry_duplicate_rate)
        total = sum(rates) * scale
        if total > 1.0:
            scale /= total
        roll = float(self._keyed_rng(0x7E1E, spec, node, repeat).random())
        edge = 0.0
        for kind, rate in zip(_TELEMETRY_FAULT_KINDS, rates):
            edge += rate * scale
            if roll < edge:
                return kind
        return None

    def _corrupt_telemetry(self, series: np.ndarray, fault: str,
                           rng: np.random.Generator) -> np.ndarray:
        """Apply one telemetry fault to one metric window."""
        series = np.asarray(series, dtype=float)
        if series.size == 0:
            return series
        if fault == "telemetry-nan":
            out = series.copy()
            n_bad = max(1, series.size // 10)
            idx = rng.choice(series.size, size=n_bad, replace=False)
            garbage = rng.choice([np.nan, np.inf, -np.inf], size=n_bad)
            out[idx] = garbage
            return out
        if fault == "telemetry-truncate":
            keep = max(1, series.size // 4)
            return series[:keep].copy()
        if fault == "telemetry-scale":
            return series * self.unit_scale_factor
        # telemetry-duplicate: a collector replayed the first half.
        half = max(1, series.size // 2)
        return np.concatenate([series, series[:half]])

    def _execute(self, spec: BenchmarkSpec, node: Node) -> BenchmarkResult:
        result = super()._execute(spec, node)
        repeat = self._repeat_counts[(node.node_id, spec.name)] - 1
        fault = self._draw_fault(spec, node, repeat)
        if fault is not None:
            self.injected.append((node.node_id, spec.name, fault))
            corrupted = []
            for window in result.windows:
                if fault == "crash":
                    corrupted.append(window.with_values(np.array([])))
                elif fault == "hang":
                    # dtype=float: np.nan cast into an integer series would
                    # raise (or wrap to a garbage value on older numpy)
                    # instead of producing the intended all-NaN metrics.
                    corrupted.append(window.with_values(
                        np.full_like(window.values, np.nan, dtype=float)))
                else:
                    corrupted.append(window.with_values(
                        np.zeros_like(window.values)))
            return result.with_windows(tuple(corrupted))
        telemetry_fault = self._draw_telemetry_fault(spec, node, repeat)
        if telemetry_fault is None:
            return result
        self.injected.append((node.node_id, spec.name, telemetry_fault))
        rng = self._keyed_rng(0x7E1F, spec, node, repeat)
        return result.with_windows(tuple(
            w.with_values(self._corrupt_telemetry(w.values, telemetry_fault,
                                                  rng))
            for w in result.windows))
