"""Multi-node phase benchmarks over a fat-tree fabric.

The multi-node benchmarks of Table 2 exercise the network between
nodes: all-pair RDMA scans (scheduled with the Appendix A circle
method), multi-node collectives, and distributed training.  Their
measurement model combines three effects:

* per-node component health (NIC / IB-link sensitivities, like the
  single-node model);
* fabric congestion from broken ToR uplink redundancy
  (:mod:`repro.topology.congestion`);
* the usual run-to-run measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchsuite.base import BenchmarkSpec, measure_metric
from repro.exceptions import BenchmarkError
from repro.hardware.components import Component
from repro.hardware.node import Node
from repro.netval.pairs import round_robin_schedule
from repro.topology.congestion import allreduce_pair_bandwidths, nominal_bus_bandwidth
from repro.topology.fattree import FatTree

__all__ = ["PairScanResult", "run_all_pair_scan", "run_group_collective"]


@dataclass(frozen=True)
class PairScanResult:
    """Outcome of a full pairwise RDMA scan.

    Attributes
    ----------
    rounds:
        The executed schedule (list of rounds of pairs).
    pair_bandwidths:
        ``frozenset({a, b})`` -> measured GB/s.
    node_min_bandwidth:
        Per node, the *worst* bandwidth over all its pairs.  A single
        bad endpoint drags down every partner's minimum, so this is a
        fabric-health indicator, not a localizer.
    node_median_bandwidth:
        Per node, the *median* bandwidth over all its pairs -- robust
        to one bad partner, so a consistently slow node stands out;
        this is the value compared against criteria when filtering
        defective endpoints.
    """

    rounds: list
    pair_bandwidths: dict[frozenset, float]
    node_min_bandwidth: dict[int, float]
    node_median_bandwidth: dict[int, float]


def run_all_pair_scan(tree: FatTree, nodes: list[Node],
                      rng: np.random.Generator, *,
                      per_pair_base_gbs: float = 24.2,
                      noise_cv: float = 0.001) -> PairScanResult:
    """Full O(n)-round pairwise RDMA-write scan.

    ``nodes[i]`` is attached at topology index ``i``.  Each round runs
    its disjoint pairs concurrently; a pair's bandwidth is the
    congestion-scaled fabric bandwidth capped by the slower endpoint's
    NIC health.
    """
    if len(nodes) != tree.config.n_nodes:
        raise BenchmarkError(
            f"{len(nodes)} nodes given for a {tree.config.n_nodes}-node topology"
        )
    rounds = round_robin_schedule(list(range(len(nodes))))
    pair_bandwidths: dict[frozenset, float] = {}
    node_min: dict[int, float] = {i: float("inf") for i in range(len(nodes))}
    node_values: dict[int, list] = {i: [] for i in range(len(nodes))}

    for round_pairs in rounds:
        fabric = allreduce_pair_bandwidths(
            tree, round_pairs, concurrent=True, noise_cv=0.0
        )
        for measured in fabric:
            a, b = measured.pair
            fabric_scale = measured.bandwidth_gbps / nominal_bus_bandwidth(tree)
            endpoint_scale = min(
                nodes[a].performance_multiplier({Component.NIC: 1.0,
                                                 Component.IB_LINK: 0.5}),
                nodes[b].performance_multiplier({Component.NIC: 1.0,
                                                 Component.IB_LINK: 0.5}),
            )
            noise = 1.0 + noise_cv * float(rng.standard_normal())
            bandwidth = per_pair_base_gbs * fabric_scale * endpoint_scale * noise
            pair_bandwidths[frozenset((a, b))] = max(bandwidth, 0.0)
            node_min[a] = min(node_min[a], bandwidth)
            node_min[b] = min(node_min[b], bandwidth)
            node_values[a].append(bandwidth)
            node_values[b].append(bandwidth)
    node_median = {i: float(np.median(vals)) for i, vals in node_values.items()}
    return PairScanResult(rounds=rounds, pair_bandwidths=pair_bandwidths,
                          node_min_bandwidth=node_min,
                          node_median_bandwidth=node_median)


def run_group_collective(spec: BenchmarkSpec, tree: FatTree, nodes: list[Node],
                         member_indices: list[int],
                         rng: np.random.Generator) -> dict[str, np.ndarray]:
    """Collective (all-reduce/all-gather/all-to-all) over a node group.

    Gang-scheduled semantics: the group's achieved bandwidth is set by
    its *slowest* member and the most congested ToR its traffic
    crosses.  Returns metric name -> sample (shared by all members).
    """
    if len(member_indices) < 2:
        raise BenchmarkError("a collective needs at least two members")
    for idx in member_indices:
        if not 0 <= idx < len(nodes):
            raise BenchmarkError(f"member index {idx} out of range")

    # Slowest member dominates (synchronized collectives).
    weakest = min(
        (nodes[i] for i in member_indices),
        key=lambda node: node.performance_multiplier(spec.sensitivity),
    )
    # Worst congestion over the ToRs the group spans.
    tors = {tree.tor_of(i) for i in member_indices}
    congestion = 1.0
    if len(tors) > 1:
        threshold = tree.config.congestion_threshold
        for tor in tors:
            alive = tree.alive_uplinks(tor)
            if alive < threshold:
                congestion = min(congestion, alive / threshold)

    samples = {}
    for metric in spec.metrics:
        series = measure_metric(spec, metric, weakest, rng)
        if metric.higher_is_better:
            series = series * congestion
        else:
            series = series / max(congestion, 1e-6)
        samples[metric.name] = series
    return samples
