"""Flow-level congestion model for concurrent all-reduce pairs.

Reproduces the Figure 3 phenomenon: when many 2-node all-reduce pairs
run *simultaneously* on a fat-tree, pairs whose traffic crosses a ToR
with more than half of its redundant uplinks broken see degraded bus
bandwidth, while the same pairs measured in isolation look healthy.

The model is deliberately simple and matches the paper's empirical
rule rather than simulating packets:

* a pair inside one ToR never touches uplinks and always achieves the
  nominal bus bandwidth;
* a cross-ToR pair traverses the uplinks of both endpoints' ToRs (and
  the pod/core tier, which stays over-provisioned here);
* under full concurrency the subscribed demand equals the ToR's
  *congestion threshold* capacity (``uplinks - redundant/2``), so a
  ToR with ``alive >= threshold`` is congestion-free and one below it
  scales every crossing flow by ``alive / threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.fattree import FatTree

__all__ = ["PairBandwidth", "allreduce_pair_bandwidths", "nominal_bus_bandwidth"]


def nominal_bus_bandwidth(tree: FatTree) -> float:
    """Healthy 2-node all-reduce bus bandwidth in GB/s.

    All NICs drive traffic concurrently; bus bandwidth for a 2-node
    all-reduce approaches the aggregate NIC line rate.  We charge a
    ~7% protocol efficiency loss, in line with NCCL-tests numbers.
    """
    cfg = tree.config
    line_rate_gbs = cfg.nics_per_node * cfg.link_bandwidth_gbps / 8.0
    return 0.93 * line_rate_gbs


@dataclass(frozen=True)
class PairBandwidth:
    """Measured bandwidth of one concurrent node pair."""

    pair: tuple[int, int]
    bandwidth_gbps: float
    congested: bool


def allreduce_pair_bandwidths(tree: FatTree, pairs, *,
                              concurrent: bool = True,
                              noise_cv: float = 0.01,
                              rng: np.random.Generator | None = None
                              ) -> list[PairBandwidth]:
    """Bus bandwidth of each 2-node all-reduce pair.

    Parameters
    ----------
    tree:
        The fat-tree, including current uplink liveness.
    pairs:
        Iterable of ``(a, b)`` node pairs.  Pairs must be node-disjoint
        when ``concurrent`` is true (a node cannot run two all-reduces
        at once).
    concurrent:
        When true, apply the congestion model; when false, each pair is
        measured alone and only a total-uplink-loss ToR degrades it.
    noise_cv:
        Measurement noise (coefficient of variation).
    rng:
        Source of measurement noise; deterministic zero-noise when
        omitted and ``noise_cv`` is 0.
    """
    pair_list = [(int(a), int(b)) for a, b in pairs]
    seen: set[int] = set()
    for a, b in pair_list:
        if a == b:
            raise TopologyError(f"pair ({a}, {b}) is degenerate")
        if concurrent and (a in seen or b in seen):
            raise TopologyError("concurrent pairs must be node-disjoint")
        seen.update((a, b))

    nominal = nominal_bus_bandwidth(tree)
    threshold = tree.config.congestion_threshold
    base = tree.config.base_uplinks
    if rng is None:
        rng = np.random.default_rng(0)

    results = []
    for a, b in pair_list:
        tor_a, tor_b = tree.tor_of(a), tree.tor_of(b)
        scale = 1.0
        congested = False
        if tor_a != tor_b:
            for tor in (tor_a, tor_b):
                alive = tree.alive_uplinks(tor)
                if concurrent:
                    if alive < threshold:
                        scale = min(scale, alive / threshold)
                        congested = True
                else:
                    # Alone on the fabric, a single pair only needs the
                    # base (non-redundant) capacity.
                    if alive < base:
                        scale = min(scale, alive / base)
                        congested = True
        noise = 1.0 + noise_cv * float(rng.standard_normal()) if noise_cv else 1.0
        bandwidth = max(0.0, nominal * scale * noise)
        results.append(PairBandwidth(pair=(a, b), bandwidth_gbps=bandwidth,
                                     congested=congested))
    return results
