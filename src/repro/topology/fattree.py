"""Fat-tree (Clos) topology with redundant ToR uplinks.

Models the paper's InfiniBand testbed (§2.2, Figure 3, Appendix A):
nodes attach to top-of-rack (ToR) switches, ToRs attach to aggregation
switches within a pod, pods attach to a core tier.  Each ToR carries
*redundant* uplinks -- more capacity than the subscribed demand -- and
the paper's empirical rule is that congestion appears once more than
half of a ToR's redundant uplinks are down.

The class tracks per-ToR uplink liveness and answers the structural
queries the rest of the library needs: which ToR/pod a node lives in,
hop distances (2 intra-ToR, 4 intra-pod, 6 cross-pod), and the
grouping used by the Appendix A quick scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.exceptions import TopologyError

__all__ = ["FatTreeConfig", "FatTree"]


@dataclass(frozen=True)
class FatTreeConfig:
    """Shape of a 3-tier fat-tree.

    Attributes
    ----------
    n_nodes:
        Number of compute nodes (VMs).
    nodes_per_tor:
        Nodes attached to each ToR switch.
    tors_per_pod:
        ToRs under each aggregation pod.
    uplinks_per_tor:
        Total uplinks from each ToR to its pod's aggregation layer.
    redundant_uplinks:
        How many of those uplinks are redundancy beyond the subscribed
        demand (the paper's testbed has 25% redundant uplinks).
    link_bandwidth_gbps:
        Capacity of one uplink.
    nics_per_node:
        InfiniBand NICs per node (8 in the paper's testbeds).
    """

    n_nodes: int = 24
    nodes_per_tor: int = 4
    tors_per_pod: int = 3
    uplinks_per_tor: int = 20
    redundant_uplinks: int = 4
    link_bandwidth_gbps: float = 200.0
    nics_per_node: int = 8

    def __post_init__(self):
        if self.n_nodes <= 0 or self.nodes_per_tor <= 0:
            raise TopologyError("n_nodes and nodes_per_tor must be positive")
        if self.tors_per_pod <= 0:
            raise TopologyError("tors_per_pod must be positive")
        if not 0 <= self.redundant_uplinks < self.uplinks_per_tor:
            raise TopologyError(
                "redundant_uplinks must be in [0, uplinks_per_tor)"
            )

    @property
    def base_uplinks(self) -> int:
        """Uplinks needed to carry subscribed demand without redundancy."""
        return self.uplinks_per_tor - self.redundant_uplinks

    @property
    def congestion_threshold(self) -> float:
        """Minimum alive uplinks before congestion appears.

        The paper's rule: at most half of the redundancies may be
        broken, i.e. ``alive >= uplinks - redundant / 2``.
        """
        return self.uplinks_per_tor - self.redundant_uplinks / 2.0


class FatTree:
    """A concrete fat-tree with mutable uplink liveness."""

    def __init__(self, config: FatTreeConfig | None = None):
        self.config = config or FatTreeConfig()
        cfg = self.config
        self.n_tors = -(-cfg.n_nodes // cfg.nodes_per_tor)  # ceil division
        self.n_pods = -(-self.n_tors // cfg.tors_per_pod)
        self._node_tor = {
            node: node // cfg.nodes_per_tor for node in range(cfg.n_nodes)
        }
        self._tor_pod = {tor: tor // cfg.tors_per_pod for tor in range(self.n_tors)}
        # Per-ToR count of *alive* uplinks; starts fully redundant.
        self._alive_uplinks = {tor: cfg.uplinks_per_tor for tor in range(self.n_tors)}
        self._graph = self._build_graph()

    def _build_graph(self) -> nx.Graph:
        """Structural graph: node -- tor -- agg(pod) -- core."""
        g = nx.Graph()
        g.add_node("core", tier="core")
        for pod in range(self.n_pods):
            g.add_node(f"agg-{pod}", tier="agg")
            g.add_edge(f"agg-{pod}", "core")
        for tor in range(self.n_tors):
            g.add_node(f"tor-{tor}", tier="tor")
            g.add_edge(f"tor-{tor}", f"agg-{self._tor_pod[tor]}")
        for node in range(self.config.n_nodes):
            g.add_node(f"node-{node}", tier="node")
            g.add_edge(f"node-{node}", f"tor-{self._node_tor[node]}")
        return g

    @property
    def graph(self) -> nx.Graph:
        """The structural graph (read-only by convention)."""
        return self._graph

    @property
    def nodes(self) -> list[int]:
        """Compute node indices."""
        return list(range(self.config.n_nodes))

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def tor_of(self, node: int) -> int:
        """ToR switch index of ``node``."""
        try:
            return self._node_tor[node]
        except KeyError:
            raise TopologyError(f"node {node} not in topology") from None

    def pod_of_tor(self, tor: int) -> int:
        """Pod (aggregation group) of ``tor``."""
        try:
            return self._tor_pod[tor]
        except KeyError:
            raise TopologyError(f"tor {tor} not in topology") from None

    def pod_of(self, node: int) -> int:
        """Pod of ``node``."""
        return self.pod_of_tor(self.tor_of(node))

    def nodes_in_tor(self, tor: int) -> list[int]:
        """Compute nodes attached to ``tor``."""
        return [n for n, t in self._node_tor.items() if t == tor]

    def tors_in_pod(self, pod: int) -> list[int]:
        """ToRs inside ``pod``."""
        return [t for t, p in self._tor_pod.items() if p == pod]

    def hop_distance(self, a: int, b: int) -> int:
        """Switch-hop distance between two nodes: 2, 4 or 6."""
        if a == b:
            raise TopologyError("hop distance needs two distinct nodes")
        if self.tor_of(a) == self.tor_of(b):
            return 2
        if self.pod_of(a) == self.pod_of(b):
            return 4
        return 6

    @property
    def tiers(self) -> int:
        """Number of switch tiers (3 for node/tor/agg/core trees)."""
        return 3

    # ------------------------------------------------------------------
    # Uplink liveness
    # ------------------------------------------------------------------
    def alive_uplinks(self, tor: int) -> int:
        """Currently alive uplinks of ``tor``."""
        if tor not in self._alive_uplinks:
            raise TopologyError(f"tor {tor} not in topology")
        return self._alive_uplinks[tor]

    def fail_uplinks(self, tor: int, count: int) -> None:
        """Mark ``count`` uplinks of ``tor`` as broken."""
        alive = self.alive_uplinks(tor)
        if count < 0 or count > alive:
            raise TopologyError(
                f"cannot fail {count} uplinks on tor {tor} with {alive} alive"
            )
        self._alive_uplinks[tor] = alive - count

    def repair_uplinks(self, tor: int, count: int | None = None) -> None:
        """Restore ``count`` uplinks of ``tor`` (all of them by default)."""
        alive = self.alive_uplinks(tor)
        capacity = self.config.uplinks_per_tor
        if count is None:
            self._alive_uplinks[tor] = capacity
            return
        if count < 0 or alive + count > capacity:
            raise TopologyError(
                f"cannot repair {count} uplinks on tor {tor}: {alive}/{capacity} alive"
            )
        self._alive_uplinks[tor] = alive + count

    def redundancy_ratio(self, tor: int) -> float:
        """Fraction of *redundant* uplinks still alive on ``tor``.

        1.0 with nothing broken, 0.0 once every redundant link is gone
        (further failures eat into base capacity and the ratio goes
        negative -- congestion is then unavoidable).
        """
        cfg = self.config
        if cfg.redundant_uplinks == 0:
            return 1.0
        broken = cfg.uplinks_per_tor - self.alive_uplinks(tor)
        return 1.0 - broken / cfg.redundant_uplinks

    def congested(self, tor: int) -> bool:
        """True when the paper's half-the-redundancy rule is violated."""
        return self.alive_uplinks(tor) < self.config.congestion_threshold
