"""Fat-tree network topology and congestion model."""

from repro.topology.congestion import (
    PairBandwidth,
    allreduce_pair_bandwidths,
    nominal_bus_bandwidth,
)
from repro.topology.fattree import FatTree, FatTreeConfig

__all__ = [
    "FatTree",
    "FatTreeConfig",
    "PairBandwidth",
    "allreduce_pair_bandwidths",
    "nominal_bus_bandwidth",
]
