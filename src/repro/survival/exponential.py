"""Exponential-distribution baselines for incident prediction (Table 3).

Three baselines from the paper's §5.2 evaluation:

* :class:`ExponentialModel` -- a single constant incident rate
  ``S(t) = exp(-lambda t)``.
* :class:`ExponentialPerIncidentCount` -- one rate per historical
  incident count (informed by Figure 4's MTBI decay).
* :class:`ExponentialPerHour` -- one rate per current-up-time bucket.

All three are maximum-likelihood under right censoring:
``lambda = (# events) / (total observed time)``.
"""

from __future__ import annotations

import numpy as np

from repro.survival.base import SurvivalDataset, SurvivalModel

__all__ = [
    "ExponentialModel",
    "ExponentialPerIncidentCount",
    "ExponentialPerHour",
]

_MIN_RATE = 1e-9


def _mle_rate(durations: np.ndarray, events: np.ndarray) -> float:
    """Censoring-aware exponential-rate MLE, floored away from zero."""
    total_time = float(durations.sum())
    n_events = float(events.sum())
    if total_time <= 0.0:
        return _MIN_RATE
    return max(n_events / total_time, _MIN_RATE)


class ExponentialModel(SurvivalModel):
    """Constant incident rate across all node statuses."""

    def __init__(self):
        self.rate_: float | None = None

    def fit(self, dataset: SurvivalDataset) -> "ExponentialModel":
        self.rate_ = _mle_rate(dataset.durations, dataset.events)
        self._fitted = True
        return self

    def survival_function(self, covariates, times) -> np.ndarray:
        self._require_fitted()
        covariates = np.atleast_2d(covariates)
        times = np.asarray(times, dtype=float)
        surv = np.exp(-self.rate_ * times)
        return np.tile(surv, (covariates.shape[0], 1))


class _GroupedExponential(SurvivalModel):
    """Shared machinery: one exponential rate per covariate-derived group."""

    def __init__(self, feature_name: str):
        self.feature_name = feature_name
        self.rates_: dict[int, float] = {}
        self.global_rate_: float | None = None
        self._feature_index: int | None = None
        self._min_group_size = 10

    def _group_key(self, value: float) -> int:
        raise NotImplementedError

    def fit(self, dataset: SurvivalDataset):
        if self.feature_name not in dataset.feature_names:
            raise KeyError(
                f"{type(self).__name__} needs feature {self.feature_name!r}; "
                f"dataset has {dataset.feature_names}"
            )
        self._feature_index = dataset.feature_names.index(self.feature_name)
        values = dataset.covariates[:, self._feature_index]
        keys = np.array([self._group_key(v) for v in values])
        self.global_rate_ = _mle_rate(dataset.durations, dataset.events)
        self.rates_ = {}
        for key in np.unique(keys):
            mask = keys == key
            if mask.sum() >= self._min_group_size:
                self.rates_[int(key)] = _mle_rate(
                    dataset.durations[mask], dataset.events[mask]
                )
        self._fitted = True
        return self

    def _rate_for(self, covariate_row: np.ndarray) -> float:
        key = self._group_key(covariate_row[self._feature_index])
        return self.rates_.get(key, self.global_rate_)

    def survival_function(self, covariates, times) -> np.ndarray:
        self._require_fitted()
        covariates = np.atleast_2d(covariates)
        times = np.asarray(times, dtype=float)
        rates = np.array([self._rate_for(row) for row in covariates])
        return np.exp(-np.outer(rates, times))


class ExponentialPerIncidentCount(_GroupedExponential):
    """One exponential rate per historical incident count.

    Counts above ``max_count`` share one bucket so sparse tails do not
    produce unstable rates.
    """

    def __init__(self, feature_name: str = "incident_count", max_count: int = 20):
        super().__init__(feature_name)
        self.max_count = max_count

    def _group_key(self, value: float) -> int:
        return int(min(max(value, 0), self.max_count))


class ExponentialPerHour(_GroupedExponential):
    """One exponential rate per current-up-time bucket.

    The up-time covariate (hours) is bucketed with ``bucket_hours``
    resolution; each bucket gets its own censoring-aware rate.
    """

    def __init__(self, feature_name: str = "up_time", bucket_hours: float = 200.0):
        super().__init__(feature_name)
        if bucket_hours <= 0:
            raise ValueError("bucket_hours must be positive")
        self.bucket_hours = bucket_hours

    def _group_key(self, value: float) -> int:
        return int(max(value, 0.0) // self.bucket_hours)
