"""Incident-probability (survival) models for the Selector."""

from repro.survival.base import HORIZON_HOURS, SurvivalDataset, SurvivalModel
from repro.survival.coxtime import CoxTimeModel
from repro.survival.data import STATUS_FEATURES, extract_status_samples
from repro.survival.exponential import (
    ExponentialModel,
    ExponentialPerHour,
    ExponentialPerIncidentCount,
)
from repro.survival.metrics import evaluate_model, tbni_accuracy
from repro.survival.mlp import Mlp

__all__ = [
    "HORIZON_HOURS",
    "STATUS_FEATURES",
    "CoxTimeModel",
    "ExponentialModel",
    "ExponentialPerHour",
    "ExponentialPerIncidentCount",
    "Mlp",
    "SurvivalDataset",
    "SurvivalModel",
    "evaluate_model",
    "extract_status_samples",
    "tbni_accuracy",
]
