"""Status-sample extraction from incident traces (paper §5.2).

The Cox-Time evaluation turns an incident trace into *node status
samples*: snapshots of a node's observable state (total up time, time
since the last incident, historical incident counts and per-category
MTBI) paired with the observed *time before next incident* (TBNI).
The paper extracts 46,808 such samples from its 4-month 1k-node trace;
this module does the same for ours.

Snapshots are taken at every incident resolution and on a periodic
grid between incidents, so nodes contribute samples across their whole
lifetime, not only immediately after failures.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.components import IncidentCategory
from repro.simulation.traces import IncidentTrace
from repro.survival.base import SurvivalDataset

__all__ = ["extract_status_samples", "STATUS_FEATURES"]

_CATEGORIES = tuple(c.value for c in IncidentCategory)

#: Feature schema of the extracted covariates, in column order.
STATUS_FEATURES: tuple[str, ...] = (
    "up_time",
    "time_since_last",
    "incident_count",
    *(f"count_{cat}" for cat in _CATEGORIES),
    *(f"mtbi_{cat}" for cat in _CATEGORIES),
)


def _snapshot(observe_hour: float, up_time: float, last_end: float | None,
              counts: dict[str, int]) -> list[float]:
    """Covariate row for one observation instant."""
    time_since_last = observe_hour - last_end if last_end is not None else observe_hour
    total = sum(counts.values())
    row = [up_time, time_since_last, float(total)]
    for cat in _CATEGORIES:
        row.append(float(counts.get(cat, 0)))
    for cat in _CATEGORIES:
        count = counts.get(cat, 0)
        row.append(up_time / count if count else up_time)
    return row


def extract_status_samples(trace: IncidentTrace, *,
                           snapshot_interval_hours: float = 48.0,
                           include_censored: bool = True,
                           censored_tbni: str = "remaining") -> SurvivalDataset:
    """Build a :class:`SurvivalDataset` of status snapshots from a trace.

    Parameters
    ----------
    trace:
        The incident trace.
    snapshot_interval_hours:
        Spacing of the periodic snapshots taken between incidents (in
        addition to one snapshot right after each resolution).
    include_censored:
        Whether to keep snapshots whose next incident falls beyond the
        trace horizon (kept as right-censored rows).
    censored_tbni:
        How a censored row's TBNI is recorded: ``"remaining"`` stores
        the honest censoring time (observation to horizon; correct for
        model fitting), ``"horizon"`` stores the full trace length --
        the paper's Table 3 convention, where "no incident within the
        trace" counts as the 2,400-hour cap for the accuracy metric.
    """
    if snapshot_interval_hours <= 0:
        raise ValueError("snapshot_interval_hours must be positive")
    if censored_tbni not in ("remaining", "horizon"):
        raise ValueError(f"unknown censored_tbni mode {censored_tbni!r}")

    attribute_names: tuple[str, ...] = ()
    if trace.node_attributes:
        keys = {k for attrs in trace.node_attributes.values() for k in attrs}
        attribute_names = tuple(sorted(keys))

    rows: list[list[float]] = []
    durations: list[float] = []
    events: list[float] = []

    for node_id in trace.node_ids:
        attrs = trace.node_attributes.get(node_id, {})
        attribute_row = [float(attrs.get(name, 0.0)) for name in attribute_names]
        incidents = trace.for_node(node_id)
        # Observation instants: trace start, periodic grid, and each
        # incident resolution.
        observation_hours = set(
            np.arange(0.0, trace.horizon_hours, snapshot_interval_hours).tolist()
        )
        observation_hours.update(r.end_hour for r in incidents
                                 if r.end_hour < trace.horizon_hours)

        starts = np.array([r.start_hour for r in incidents])
        ends = np.array([r.end_hour for r in incidents])
        categories = [r.category for r in incidents]

        for observe in sorted(observation_hours):
            # Skip instants inside an ongoing incident: the node is down.
            inside = (np.any((starts < observe) & (ends > observe))
                      if incidents else False)
            if inside:
                continue
            resolved = np.flatnonzero(ends <= observe)
            counts: dict[str, int] = {}
            for idx in resolved:
                counts[categories[idx]] = counts.get(categories[idx], 0) + 1
            downtime = float(np.sum(ends[resolved] - starts[resolved]))
            up_time = max(observe - downtime, 0.0)
            last_end = float(ends[resolved].max()) if resolved.size else None

            upcoming = starts[starts >= observe]
            if upcoming.size:
                durations.append(float(upcoming.min() - observe))
                events.append(1.0)
            else:
                if not include_censored:
                    continue
                censor_time = trace.horizon_hours - observe
                if censor_time <= 0:
                    continue
                if censored_tbni == "horizon":
                    durations.append(float(trace.horizon_hours))
                else:
                    durations.append(float(censor_time))
                events.append(0.0)
            rows.append(_snapshot(observe, up_time, last_end, counts)
                        + attribute_row)

    return SurvivalDataset(
        covariates=np.asarray(rows, dtype=float),
        durations=np.asarray(durations, dtype=float),
        events=np.asarray(events, dtype=float),
        feature_names=STATUS_FEATURES + attribute_names,
    )
