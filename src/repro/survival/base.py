"""Common interface for incident-probability (survival) models.

The Selector treats every probability model uniformly (paper §3.3):
given a node's status covariates it needs

* ``P(T_incident <= t)`` -- the incident CDF ``F(t | x)``, and
* the expected *time before next incident* (TBNI), truncated at the
  trace horizon, which is what Table 3's accuracy metric scores.

Models are fit on :class:`SurvivalDataset` -- a matrix of status
covariates, observed durations until the next incident, and event
indicators (0 marks right-censored rows).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelNotFittedError

__all__ = ["SurvivalDataset", "SurvivalModel", "HORIZON_HOURS"]

#: Trace length used by the paper to cap TBNI predictions: 2,400 hours.
HORIZON_HOURS = 2400.0


@dataclass(frozen=True)
class SurvivalDataset:
    """Aligned arrays describing node status snapshots.

    Attributes
    ----------
    covariates:
        ``(n, d)`` matrix of node statuses (up time, incident counts,
        per-category MTBI, ...).
    durations:
        ``(n,)`` observed time until the next incident (hours).
    events:
        ``(n,)`` indicator; 1 = the incident was observed, 0 = censored.
    feature_names:
        Optional column names for ``covariates``.
    """

    covariates: np.ndarray
    durations: np.ndarray
    events: np.ndarray
    feature_names: tuple[str, ...] = ()

    def __post_init__(self):
        cov = np.atleast_2d(np.asarray(self.covariates, dtype=float))
        dur = np.asarray(self.durations, dtype=float).ravel()
        evt = np.asarray(self.events, dtype=float).ravel()
        if cov.shape[0] != dur.size or dur.size != evt.size:
            raise ValueError(
                f"misaligned dataset: {cov.shape[0]} covariate rows, "
                f"{dur.size} durations, {evt.size} events"
            )
        if np.any(dur < 0):
            raise ValueError("durations must be non-negative")
        object.__setattr__(self, "covariates", cov)
        object.__setattr__(self, "durations", dur)
        object.__setattr__(self, "events", evt)

    def __len__(self) -> int:
        return int(self.durations.size)

    def split(self, train_fraction: float = 0.8, seed: int = 0
              ) -> tuple["SurvivalDataset", "SurvivalDataset"]:
        """Random train/test split (the paper uses 80/20)."""
        rng = np.random.default_rng(seed)
        n = len(self)
        order = rng.permutation(n)
        cut = int(round(train_fraction * n))
        train_idx, test_idx = order[:cut], order[cut:]
        return self.take(train_idx), self.take(test_idx)

    def take(self, indices) -> "SurvivalDataset":
        """Row subset of the dataset."""
        idx = np.asarray(indices, dtype=int)
        return SurvivalDataset(
            covariates=self.covariates[idx],
            durations=self.durations[idx],
            events=self.events[idx],
            feature_names=self.feature_names,
        )

    def feature(self, name: str) -> np.ndarray:
        """Column of ``covariates`` selected by name."""
        if name not in self.feature_names:
            raise KeyError(f"unknown feature {name!r}; have {self.feature_names}")
        return self.covariates[:, self.feature_names.index(name)]


class SurvivalModel(abc.ABC):
    """Abstract incident-probability model."""

    _fitted = False

    @abc.abstractmethod
    def fit(self, dataset: SurvivalDataset) -> "SurvivalModel":
        """Fit on training status samples; returns ``self``."""

    @abc.abstractmethod
    def survival_function(self, covariates: np.ndarray,
                          times: np.ndarray) -> np.ndarray:
        """``S(t | x)`` evaluated on a grid.

        Returns an ``(n, len(times))`` matrix of survival probabilities.
        """

    def incident_probability(self, covariates: np.ndarray, t: float) -> np.ndarray:
        """``P(T_incident <= t | x)`` for each covariate row."""
        self._require_fitted()
        times = np.asarray([t], dtype=float)
        surv = self.survival_function(np.atleast_2d(covariates), times)
        return 1.0 - surv[:, 0]

    def expected_tbni(self, covariates: np.ndarray,
                      horizon: float = HORIZON_HOURS) -> np.ndarray:
        """Expected time before next incident, truncated at ``horizon``.

        Computed as ``E[min(T, horizon)] = integral_0^horizon S(t) dt``
        on a quantile-spaced grid.
        """
        self._require_fitted()
        covariates = np.atleast_2d(covariates)
        times = np.linspace(0.0, horizon, 241)
        surv = self.survival_function(covariates, times)
        return np.trapezoid(surv, times, axis=1)

    def median_tbni(self, covariates: np.ndarray,
                    horizon: float = HORIZON_HOURS) -> np.ndarray:
        """Median time before next incident, truncated at ``horizon``.

        The first grid time where ``S(t) <= 0.5``; the horizon when the
        survival curve never crosses one half.  Under the paper's
        L1-style accuracy metric the conditional median is the optimal
        point prediction, so Table 3 scores models on this predictor.
        """
        self._require_fitted()
        covariates = np.atleast_2d(covariates)
        times = np.linspace(0.0, horizon, 481)
        surv = self.survival_function(covariates, times)
        below = surv <= 0.5
        medians = np.full(covariates.shape[0], horizon)
        has_crossing = below.any(axis=1)
        first_crossing = below.argmax(axis=1)
        medians[has_crossing] = times[first_crossing[has_crossing]]
        return medians

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ModelNotFittedError(f"{type(self).__name__} has not been fit")
