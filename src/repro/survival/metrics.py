"""Evaluation metrics for incident-probability models (Table 3).

The paper scores models by *TBNI prediction accuracy*: for each test
sample, ``1 - |prediction - actual| / horizon`` with predictions (and
actuals) capped at the 2,400-hour trace length, averaged over the test
set.
"""

from __future__ import annotations

import numpy as np

from repro.survival.base import HORIZON_HOURS, SurvivalDataset, SurvivalModel

__all__ = ["tbni_accuracy", "evaluate_model"]


def tbni_accuracy(predictions, actuals, horizon: float = HORIZON_HOURS) -> float:
    """Mean TBNI prediction accuracy with capping (paper §5.2).

    Both predictions and actual TBNI values are capped at ``horizon``
    before comparison, keeping each per-sample accuracy in ``[0, 1]``.
    """
    preds = np.minimum(np.asarray(predictions, dtype=float), horizon)
    actual = np.minimum(np.asarray(actuals, dtype=float), horizon)
    if preds.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: {preds.shape} predictions vs {actual.shape} actuals"
        )
    if preds.size == 0:
        raise ValueError("cannot score an empty prediction set")
    return float(np.mean(1.0 - np.abs(preds - actual) / horizon))


def evaluate_model(model: SurvivalModel, test: SurvivalDataset,
                   horizon: float = HORIZON_HOURS, *,
                   events_only: bool = True,
                   predictor: str = "median") -> float:
    """Fit-free evaluation: accuracy of ``model`` on a test split.

    ``events_only`` keeps only rows whose incident was observed, since
    the paper's samples "contain one single incident" each.
    ``predictor`` selects the point prediction: ``"median"`` (optimal
    for the L1-style accuracy metric, the default) or ``"expected"``
    (the paper's phrasing).
    """
    if predictor not in ("median", "expected"):
        raise ValueError(f"unknown predictor {predictor!r}")
    if events_only:
        mask = test.events > 0
        test = test.take(np.flatnonzero(mask))
    if predictor == "median":
        predictions = model.median_tbni(test.covariates, horizon=horizon)
    else:
        predictions = model.expected_tbni(test.covariates, horizon=horizon)
    return tbni_accuracy(predictions, test.durations, horizon=horizon)
