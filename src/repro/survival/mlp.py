"""A minimal fully-connected network with manual backpropagation.

The paper trains the Cox-Time model of Kvamme et al. with PyCox; neither
torch nor pycox is available offline, so this module implements the tiny
piece of deep learning the Selector needs: a dense ReLU network with an
Adam optimizer, written directly against NumPy.

The network maps a ``(batch, n_inputs)`` matrix to a ``(batch, 1)``
column of relative-risk scores ``g(t, x)``.  Training code calls
:meth:`Mlp.forward`, computes the gradient of the scalar loss with
respect to the network output, and hands it to :meth:`Mlp.backward`
followed by :meth:`Mlp.step`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Mlp"]


class Mlp:
    """Dense ReLU network trained with Adam.

    Parameters
    ----------
    layer_sizes:
        Sizes including input and output, e.g. ``[8, 32, 32, 1]``.
    seed:
        Seed for He-normal weight initialization.
    """

    def __init__(self, layer_sizes: list[int], seed: int = 0):
        if len(layer_sizes) < 2:
            raise ValueError("need at least an input and an output layer")
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._cache: list[np.ndarray] = []
        self._grads_w = [np.zeros_like(w) for w in self.weights]
        self._grads_b = [np.zeros_like(b) for b in self.biases]
        # Adam state.
        self._m_w = [np.zeros_like(w) for w in self.weights]
        self._v_w = [np.zeros_like(w) for w in self.weights]
        self._m_b = [np.zeros_like(b) for b in self.biases]
        self._v_b = [np.zeros_like(b) for b in self.biases]
        self._t = 0

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Forward pass; caches pre-activations when ``train`` is true."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        cache = [x]
        h = x
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            if i < self.n_layers - 1:
                h = np.maximum(z, 0.0)
            else:
                h = z
            cache.append(h)
        if train:
            self._cache = cache
        return h

    def backward(self, grad_out: np.ndarray) -> None:
        """Accumulate parameter gradients for the cached forward pass."""
        if not self._cache:
            raise RuntimeError("backward called before forward(train=True)")
        grad = np.asarray(grad_out, dtype=float)
        if grad.ndim == 1:
            grad = grad[:, None]
        for i in reversed(range(self.n_layers)):
            h_in = self._cache[i]
            h_out = self._cache[i + 1]
            if i < self.n_layers - 1:
                grad = grad * (h_out > 0.0)
            self._grads_w[i] += h_in.T @ grad
            self._grads_b[i] += grad.sum(axis=0)
            if i > 0:
                grad = grad @ self.weights[i].T
        self._cache = []

    def step(self, lr: float = 1e-3, weight_decay: float = 0.0,
             beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - beta1 ** self._t
        bias2 = 1.0 - beta2 ** self._t
        for i in range(self.n_layers):
            gw = self._grads_w[i] + weight_decay * self.weights[i]
            gb = self._grads_b[i]
            self._m_w[i] = beta1 * self._m_w[i] + (1 - beta1) * gw
            self._v_w[i] = beta2 * self._v_w[i] + (1 - beta2) * gw * gw
            self._m_b[i] = beta1 * self._m_b[i] + (1 - beta1) * gb
            self._v_b[i] = beta2 * self._v_b[i] + (1 - beta2) * gb * gb
            self.weights[i] -= (lr * (self._m_w[i] / bias1)
                                / (np.sqrt(self._v_w[i] / bias2) + eps))
            self.biases[i] -= (lr * (self._m_b[i] / bias1)
                               / (np.sqrt(self._v_b[i] / bias2) + eps))
        self.zero_grad()

    def zero_grad(self) -> None:
        """Reset accumulated gradients."""
        for g in self._grads_w:
            g[:] = 0.0
        for g in self._grads_b:
            g[:] = 0.0
