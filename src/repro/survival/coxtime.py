"""Cox-Time incident-probability model (paper §3.3).

A from-scratch NumPy implementation of the Cox-Time relative-risk model
of Kvamme, Borgan and Scheel ("Time-to-event prediction with neural
networks and Cox regression"), the model the paper trains with PyCox:

* a dense network ``g(t, x)`` scores the hazard of covariates ``x`` at
  time ``t`` (non-proportional: time is an input);
* training minimizes the case-control approximation of the Cox partial
  likelihood -- for each event, a handful of controls is sampled from
  its risk set and the loss is
  ``log( sum_{j in sampled set} exp(g(t_i, x_j) - g(t_i, x_i)) )``;
* a Breslow-type step-function baseline hazard is estimated on a
  quantile time grid after training, giving absolute survival curves
  ``S(t | x) = exp(-H(t | x))``.

The Selector consumes :meth:`incident_probability` (for the skip
decision) and Table 3 scores :meth:`expected_tbni`.
"""

from __future__ import annotations

import numpy as np

from repro.survival.base import SurvivalDataset, SurvivalModel
from repro.survival.mlp import Mlp

__all__ = ["CoxTimeModel"]


class CoxTimeModel(SurvivalModel):
    """Neural Cox-Time model with sampled-risk-set training.

    Parameters
    ----------
    hidden:
        Hidden layer widths of the relative-risk network.
    n_controls:
        Controls sampled per event for the partial-likelihood loss.
    epochs, batch_size, learning_rate, weight_decay:
        Optimization knobs (Adam).
    grid_size:
        Number of quantile bins for the Breslow baseline hazard.
    seed:
        Controls weight init, batching and risk-set sampling.
    """

    def __init__(self, hidden: tuple[int, ...] = (32, 32), *,
                 n_controls: int = 2, epochs: int = 25, batch_size: int = 512,
                 learning_rate: float = 5e-3, weight_decay: float = 1e-4,
                 grid_size: int = 64, seed: int = 0):
        self.hidden = tuple(hidden)
        self.n_controls = int(n_controls)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.grid_size = int(grid_size)
        self.seed = int(seed)
        self.net_: Mlp | None = None
        self.loss_history_: list[float] = []
        # Standardization constants.
        self._x_mean: np.ndarray | None = None
        self._x_std: np.ndarray | None = None
        self._t_scale: float = 1.0
        # Breslow baseline: bin edges, per-bin baseline rates, midpoints.
        self._edges: np.ndarray | None = None
        self._base_rates: np.ndarray | None = None
        self._mids: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, dataset: SurvivalDataset) -> "CoxTimeModel":
        x = dataset.covariates
        durations = dataset.durations
        events = dataset.events.astype(bool)
        if not events.any():
            raise ValueError("Cox-Time training needs at least one observed event")

        self._x_mean = x.mean(axis=0)
        self._x_std = x.std(axis=0)
        self._x_std[self._x_std == 0.0] = 1.0
        self._t_scale = max(float(durations[events].mean()), 1e-9)

        xs = (x - self._x_mean) / self._x_std
        ts = durations / self._t_scale

        rng = np.random.default_rng(self.seed)
        self.net_ = Mlp([xs.shape[1] + 1, *self.hidden, 1], seed=self.seed)

        # Sort by duration so risk sets are contiguous suffixes.
        order = np.argsort(durations, kind="stable")
        xs_sorted = xs[order]
        ts_sorted = ts[order]
        event_positions = np.flatnonzero(events[order])
        n = xs_sorted.shape[0]

        self.loss_history_ = []
        for _ in range(self.epochs):
            rng.shuffle(event_positions)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, event_positions.size, self.batch_size):
                batch = event_positions[start:start + self.batch_size]
                loss = self._train_batch(batch, xs_sorted, ts_sorted, n, rng)
                epoch_loss += loss
                n_batches += 1
            self.loss_history_.append(epoch_loss / max(n_batches, 1))

        self._estimate_baseline(xs_sorted, ts_sorted, event_positions, rng)
        self._fitted = True
        return self

    def _train_batch(self, batch: np.ndarray, xs_sorted: np.ndarray,
                     ts_sorted: np.ndarray, n: int,
                     rng: np.random.Generator) -> float:
        """One case-control partial-likelihood step; returns batch loss."""
        b = batch.size
        m = self.n_controls
        # Controls are uniform draws from each event's risk set, i.e.
        # indices at or after the event's position in duration order.
        lows = np.repeat(batch, m)
        controls = rng.integers(lows, n)  # high is exclusive; lows < n
        member_idx = np.concatenate(
            [batch[:, None], controls.reshape(b, m)], axis=1
        )  # (b, 1 + m); column 0 is the case
        event_times = ts_sorted[batch]

        rows = np.concatenate(
            [
                np.repeat(event_times, 1 + m)[:, None],
                xs_sorted[member_idx.ravel()],
            ],
            axis=1,
        )
        g = self.net_.forward(rows, train=True).reshape(b, 1 + m)

        shifted = g - g.max(axis=1, keepdims=True)
        expg = np.exp(shifted)
        denom = expg.sum(axis=1, keepdims=True)
        softmax = expg / denom
        # loss_i = logsumexp(g_i) - g_case ; gradient = softmax - onehot.
        loss = float(np.mean(
            np.log(denom[:, 0]) + g.max(axis=1) - g[:, 0]
        ))
        grad = softmax.copy()
        grad[:, 0] -= 1.0
        grad /= b
        self.net_.backward(grad.reshape(-1, 1))
        self.net_.step(self.learning_rate, weight_decay=self.weight_decay)
        return loss

    def _estimate_baseline(self, xs_sorted: np.ndarray, ts_sorted: np.ndarray,
                           event_positions: np.ndarray,
                           rng: np.random.Generator) -> None:
        """Breslow baseline hazard rate on a quantile grid.

        For each bin ``(edge_{k-1}, edge_k]`` with ``d_k`` events, the
        baseline *rate* is ``d_k / (D_k * width_k)`` where ``D_k`` is
        the risk-set sum of ``exp(g(mid_k, x_j))``, estimated on a
        subsample when the risk set is large.
        """
        event_times = ts_sorted[event_positions]
        quantiles = np.linspace(0.0, 1.0, self.grid_size + 1)[1:]
        edges = np.unique(np.quantile(event_times, quantiles))
        edges = edges[edges > 0.0]
        self._edges = np.concatenate([[0.0], edges])
        self._mids = 0.5 * (self._edges[:-1] + self._edges[1:])

        widths = np.diff(self._edges)
        n = ts_sorted.size
        rates = np.zeros_like(self._mids)
        max_risk_sample = 512
        for k, mid in enumerate(self._mids):
            lo, hi = self._edges[k], self._edges[k + 1]
            d_k = int(np.count_nonzero((event_times > lo) & (event_times <= hi)))
            if d_k == 0:
                continue
            risk_start = int(np.searchsorted(ts_sorted, lo, side="right"))
            risk_size = n - risk_start
            if risk_size <= 0:
                continue
            if risk_size > max_risk_sample:
                sample = rng.integers(risk_start, n, size=max_risk_sample)
            else:
                sample = np.arange(risk_start, n)
            rows = np.concatenate(
                [np.full((sample.size, 1), mid), xs_sorted[sample]], axis=1
            )
            g = self.net_.forward(rows, train=False).ravel()
            denom = risk_size * float(np.exp(g - g.max()).mean() * np.exp(g.max()))
            rates[k] = d_k / max(denom * widths[k], 1e-12)
        self._base_rates = rates

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _risk_scores(self, xs: np.ndarray) -> np.ndarray:
        """``exp(g(mid_k, x))`` for every bin midpoint; ``(n, K)``."""
        n = xs.shape[0]
        k = self._mids.size
        rows = np.concatenate(
            [
                np.tile(self._mids, n)[:, None],
                np.repeat(xs, k, axis=0),
            ],
            axis=1,
        )
        g = self.net_.forward(rows, train=False).reshape(n, k)
        return np.exp(np.clip(g, -30.0, 30.0))

    def survival_function(self, covariates, times) -> np.ndarray:
        self._require_fitted()
        x = np.atleast_2d(np.asarray(covariates, dtype=float))
        xs = (x - self._x_mean) / self._x_std
        times = np.asarray(times, dtype=float) / self._t_scale

        rates = self._base_rates[None, :] * self._risk_scores(xs)  # (n, K)
        widths = np.diff(self._edges)
        cum_h_edges = np.concatenate(
            [np.zeros((xs.shape[0], 1)), np.cumsum(rates * widths, axis=1)],
            axis=1,
        )  # cumulative hazard at each edge, (n, K + 1)

        # Piecewise-linear interpolation of H(t); beyond the last edge
        # the final bin's rate is extrapolated.
        idx = np.searchsorted(self._edges, times, side="right") - 1
        idx = np.clip(idx, 0, widths.size - 1)
        base = cum_h_edges[:, idx]
        partial = rates[:, idx] * np.maximum(times - self._edges[idx], 0.0)[None, :]
        h = base + partial
        return np.exp(-h)
