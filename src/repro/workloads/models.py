"""Foundational-model configurations for the end-to-end benchmarks.

§3.2: customers tune model parameters (batch size, sequence length,
precision) for convergence and utilization; the benchmark set freezes
the *most prevalent* settings per foundational model.  These configs
document the representative parameters behind each end-to-end
benchmark in :mod:`repro.benchsuite.suite` and drive the example
scripts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelConfig", "MODEL_ZOO", "model_config", "models_for_benchmark"]


@dataclass(frozen=True)
class ModelConfig:
    """Representative training configuration of one model variant."""

    name: str
    family: str
    benchmark: str
    batch_size: int
    precision: str = "fp16"
    sequence_length: int | None = None
    image_size: int | None = None
    parameters_m: float = 0.0

    def __post_init__(self):
        if self.batch_size <= 0:
            raise ValueError(f"{self.name}: batch size must be positive")
        if self.precision not in ("fp32", "fp16", "bf16"):
            raise ValueError(f"{self.name}: unknown precision {self.precision!r}")


MODEL_ZOO: tuple[ModelConfig, ...] = (
    ModelConfig("resnet50", "cnn", "resnet-models", 192, "fp16",
                image_size=224, parameters_m=25.6),
    ModelConfig("resnet101", "cnn", "resnet-models", 128, "fp16",
                image_size=224, parameters_m=44.5),
    ModelConfig("resnet152", "cnn", "resnet-models", 96, "fp16",
                image_size=224, parameters_m=60.2),
    ModelConfig("densenet169", "cnn", "densenet-models", 96, "fp16",
                image_size=224, parameters_m=14.1),
    ModelConfig("densenet201", "cnn", "densenet-models", 64, "fp16",
                image_size=224, parameters_m=20.0),
    ModelConfig("vgg11", "cnn", "vgg-models", 128, "fp16",
                image_size=224, parameters_m=132.9),
    ModelConfig("vgg13", "cnn", "vgg-models", 128, "fp16",
                image_size=224, parameters_m=133.0),
    ModelConfig("vgg16", "cnn", "vgg-models", 96, "fp16",
                image_size=224, parameters_m=138.4),
    ModelConfig("vgg19", "cnn", "vgg-models", 96, "fp16",
                image_size=224, parameters_m=143.7),
    ModelConfig("lstm", "rnn", "lstm-models", 512, "fp16",
                sequence_length=128, parameters_m=8.6),
    ModelConfig("bert-base", "transformer", "bert-models", 64, "fp16",
                sequence_length=128, parameters_m=110.0),
    ModelConfig("bert-large", "transformer", "bert-models", 32, "fp16",
                sequence_length=128, parameters_m=340.0),
    ModelConfig("gpt2-small", "transformer", "gpt-models", 32, "fp16",
                sequence_length=1024, parameters_m=124.0),
    ModelConfig("gpt2-large", "transformer", "gpt-models", 8, "fp16",
                sequence_length=1024, parameters_m=774.0),
)


def model_config(name: str) -> ModelConfig:
    """Zoo lookup by model name."""
    for config in MODEL_ZOO:
        if config.name == name:
            return config
    raise KeyError(f"unknown model {name!r}")


def models_for_benchmark(benchmark: str) -> list[ModelConfig]:
    """All model variants represented by one end-to-end benchmark."""
    return [c for c in MODEL_ZOO if c.benchmark == benchmark]
