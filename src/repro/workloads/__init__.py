"""Workload mix and representative model configurations."""

from repro.workloads.distribution import (
    WORKLOAD_MIX,
    WorkloadShare,
    benchmark_coverage_of_mix,
    family_shares,
    sample_jobs,
)
from repro.workloads.models import (
    MODEL_ZOO,
    ModelConfig,
    model_config,
    models_for_benchmark,
)

__all__ = [
    "MODEL_ZOO",
    "ModelConfig",
    "WORKLOAD_MIX",
    "WorkloadShare",
    "benchmark_coverage_of_mix",
    "family_shares",
    "model_config",
    "models_for_benchmark",
    "sample_jobs",
]
