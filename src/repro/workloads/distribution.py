"""Workload distribution over a multi-tenant AI cluster (paper §2.3).

Figure 5 of the paper histograms 56k+ GPU jobs into three families --
Transformers, CNNs and others -- with tens of models inside each and a
large unidentifiable share (35.5% of Transformers).  The exact numbers
are not published, so :data:`WORKLOAD_MIX` is a synthetic mix with the
paper's qualitative structure: Transformers dominate, CNNs second,
long tails everywhere.  The benchmark-set designer uses the mix to
verify that the end-to-end benchmarks cover the bulk of jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "WorkloadShare",
    "WORKLOAD_MIX",
    "family_shares",
    "benchmark_coverage_of_mix",
    "sample_jobs",
]


@dataclass(frozen=True)
class WorkloadShare:
    """One workload slice of the cluster job mix.

    Attributes
    ----------
    family:
        "transformer", "cnn" or "other".
    model:
        Model label ("bert", "gpt", "unidentified", ...).
    share:
        Fraction of all GPU jobs.
    covering_benchmark:
        Name of the end-to-end benchmark representing this workload,
        or empty when only micro-benchmarks cover it.
    """

    family: str
    model: str
    share: float
    covering_benchmark: str = ""


#: Synthetic Figure 5 mix (shares sum to 1).
WORKLOAD_MIX: tuple[WorkloadShare, ...] = (
    WorkloadShare("transformer", "gpt", 0.155, "gpt-models"),
    WorkloadShare("transformer", "bert", 0.120, "bert-models"),
    WorkloadShare("transformer", "t5", 0.055, "bert-models"),
    WorkloadShare("transformer", "vit", 0.040, "bert-models"),
    WorkloadShare("transformer", "unidentified", 0.205, "gpt-models"),
    WorkloadShare("cnn", "resnet", 0.110, "resnet-models"),
    WorkloadShare("cnn", "densenet", 0.040, "densenet-models"),
    WorkloadShare("cnn", "vgg", 0.035, "vgg-models"),
    WorkloadShare("cnn", "unet", 0.030, "resnet-models"),
    WorkloadShare("cnn", "unidentified", 0.055, "resnet-models"),
    WorkloadShare("other", "lstm", 0.045, "lstm-models"),
    WorkloadShare("other", "recommendation", 0.040, ""),
    WorkloadShare("other", "reinforcement", 0.025, ""),
    WorkloadShare("other", "unidentified", 0.045, ""),
)


def family_shares() -> dict[str, float]:
    """Aggregate share per family (the Figure 5 macro view)."""
    shares: dict[str, float] = {}
    for item in WORKLOAD_MIX:
        shares[item.family] = shares.get(item.family, 0.0) + item.share
    return shares


def benchmark_coverage_of_mix() -> float:
    """Fraction of jobs represented by some end-to-end benchmark."""
    return sum(item.share for item in WORKLOAD_MIX if item.covering_benchmark)


def sample_jobs(n_jobs: int, seed: int = 0) -> list[WorkloadShare]:
    """Draw ``n_jobs`` workloads from the mix (synthetic job log)."""
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    rng = np.random.default_rng(seed)
    probs = np.array([item.share for item in WORKLOAD_MIX])
    probs = probs / probs.sum()
    indices = rng.choice(len(WORKLOAD_MIX), size=n_jobs, p=probs)
    return [WORKLOAD_MIX[int(i)] for i in indices]
