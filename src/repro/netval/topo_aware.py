"""Topology-aware "quick scan" in O(1) rounds (Appendix A).

For very large fabrics even the O(n)-round full scan is too slow, so
the paper proposes a *topology-aware* scan whose round count depends
only on the tree depth, not the node count: one round per hop
distance.  In the round for hop ``h``, node pairs are selected such
that every pair is exactly ``h`` switch hops apart (2 = same ToR,
4 = same pod, 6 = across the core) and every node appears in at most
one pair -- so all pairs run simultaneously and each round takes one
benchmark slot regardless of scale.  A k-tier fat-tree needs exactly
k rounds.

Coverage is per *link tier* rather than per pair: each round exercises
every node's path up to the corresponding tier once.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError
from repro.topology.fattree import FatTree

__all__ = ["quick_scan_schedule", "validate_quick_scan"]


def _pair_within_groups(groups: list[list[int]]) -> list[tuple[int, int]]:
    """Pair consecutive members inside each group; odd leftovers idle."""
    pairs = []
    for members in groups:
        for i in range(0, len(members) - 1, 2):
            pairs.append((members[i], members[i + 1]))
    return pairs


def _pair_across_groups(groups: list[list[int]]) -> list[tuple[int, int]]:
    """Pair members of *different* groups, position-aligned.

    Groups are paired up (group 0 with 1, 2 with 3, ...) and their
    members are matched by position, so traffic crosses the tier that
    separates the groups.  Leftover groups/members stay idle.
    """
    pairs = []
    for gi in range(0, len(groups) - 1, 2):
        left, right = groups[gi], groups[gi + 1]
        for a, b in zip(left, right):
            pairs.append((a, b))
    return pairs


def quick_scan_schedule(tree: FatTree) -> dict[int, list[tuple[int, int]]]:
    """Build the quick-scan rounds for a fat-tree.

    Returns a mapping from hop distance (2, 4, 6) to one round of
    node-disjoint pairs at exactly that distance.  Rounds for tiers the
    topology does not have (e.g. hop 6 on a single-pod tree) are
    omitted.
    """
    if tree.config.n_nodes < 2:
        raise SchedulingError("quick scan needs at least two nodes")
    rounds: dict[int, list[tuple[int, int]]] = {}

    # Hop 2: pairs inside each ToR.
    tor_groups = [tree.nodes_in_tor(t) for t in range(tree.n_tors)]
    hop2 = _pair_within_groups(tor_groups)
    if hop2:
        rounds[2] = hop2

    # Hop 4: pairs across ToRs inside each pod.
    hop4 = []
    for pod in range(tree.n_pods):
        groups = [tree.nodes_in_tor(t) for t in tree.tors_in_pod(pod)]
        hop4.extend(_pair_across_groups(groups))
    if hop4:
        rounds[4] = hop4

    # Hop 6: pairs across pods through the core.
    pod_groups = [
        [n for t in tree.tors_in_pod(pod) for n in tree.nodes_in_tor(t)]
        for pod in range(tree.n_pods)
    ]
    hop6 = _pair_across_groups(pod_groups)
    if hop6:
        rounds[6] = hop6

    return rounds


def validate_quick_scan(tree: FatTree,
                        rounds: dict[int, list[tuple[int, int]]]) -> None:
    """Check quick-scan invariants.

    Every pair in the round for hop ``h`` must be exactly ``h`` hops
    apart and node-disjoint within the round.  Raises
    :class:`SchedulingError` on violation.
    """
    for hop, pairs in rounds.items():
        used: set[int] = set()
        for a, b in pairs:
            if tree.hop_distance(a, b) != hop:
                raise SchedulingError(
                    f"pair ({a}, {b}) is {tree.hop_distance(a, b)} hops, "
                    f"scheduled in the {hop}-hop round"
                )
            if a in used or b in used:
                raise SchedulingError(f"node reused within {hop}-hop round")
            used.update((a, b))
