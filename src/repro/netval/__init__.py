"""Networking-validation schedulers (Appendix A)."""

from repro.netval.pairs import round_robin_schedule, validate_schedule
from repro.netval.topo_aware import quick_scan_schedule, validate_quick_scan

__all__ = [
    "quick_scan_schedule",
    "round_robin_schedule",
    "validate_quick_scan",
    "validate_schedule",
]
