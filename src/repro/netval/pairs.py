"""Full pairwise networking scan in O(n) rounds (Appendix A).

To check the bandwidth between *every* pair of N endpoints, the naive
sequential scan needs ``N(N-1)/2`` rounds.  The paper schedules all
pairs into ``N - 1`` rounds of ``N/2`` disjoint pairs each -- the
*circle method* for round-robin tournaments (Kirkman): fix endpoint 0,
place the remaining endpoints on a rotating circle, and pair opposite
positions.  Every pair appears exactly once across the schedule and no
endpoint appears twice within a round, so all pairs in a round can
benchmark simultaneously without NIC contention.

Odd endpoint counts get a *bye* (one idle endpoint per round), giving
``N`` rounds.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError

__all__ = ["round_robin_schedule", "validate_schedule"]


def round_robin_schedule(endpoints) -> list[list[tuple[int, int]]]:
    """Schedule all pairs of ``endpoints`` into disjoint-pair rounds.

    Parameters
    ----------
    endpoints:
        Sequence of hashable endpoint identifiers (node indices, NIC
        ids, ...).  Order does not affect coverage, only pairing.

    Returns
    -------
    list of rounds; each round is a list of ``(a, b)`` pairs with no
    endpoint repeated inside a round.  ``len(rounds)`` is ``N - 1`` for
    even ``N`` and ``N`` for odd ``N``.
    """
    items = list(endpoints)
    if len(items) < 2:
        raise SchedulingError("need at least two endpoints to schedule pairs")
    if len(set(items)) != len(items):
        raise SchedulingError("endpoints must be unique")

    bye = object()
    if len(items) % 2 == 1:
        items = items + [bye]
    n = len(items)

    # Circle method: index 0 is fixed; the rest rotate one slot per round.
    fixed = items[0]
    ring = items[1:]
    rounds: list[list[tuple[int, int]]] = []
    for _ in range(n - 1):
        current = [fixed] + ring
        round_pairs = []
        for k in range(n // 2):
            a, b = current[k], current[n - 1 - k]
            if a is bye or b is bye:
                continue
            round_pairs.append((a, b))
        rounds.append(round_pairs)
        ring = ring[-1:] + ring[:-1]
    return rounds


def validate_schedule(endpoints, rounds) -> None:
    """Assert a schedule covers every pair exactly once, disjointly.

    Raises :class:`SchedulingError` on any violation; used by tests and
    as a guard before driving real traffic.
    """
    items = list(endpoints)
    expected = {frozenset((a, b)) for i, a in enumerate(items) for b in items[i + 1:]}
    seen: set[frozenset] = set()
    for round_index, round_pairs in enumerate(rounds):
        used: set = set()
        for a, b in round_pairs:
            if a == b:
                raise SchedulingError(
                    f"degenerate pair ({a}, {b}) in round {round_index}")
            if a in used or b in used:
                raise SchedulingError(
                    f"endpoint reused within round {round_index}: ({a}, {b})"
                )
            used.update((a, b))
            key = frozenset((a, b))
            if key in seen:
                raise SchedulingError(f"pair ({a}, {b}) scheduled twice")
            seen.add(key)
    if seen != expected:
        missing = expected - seen
        raise SchedulingError(f"schedule misses {len(missing)} pairs")
