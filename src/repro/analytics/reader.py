"""Incremental, CRC-verified streaming reads over the journal.

:class:`JournalReader` is the analytics plane's tail over a
:class:`~repro.service.store.JournalStore` directory.  Where
``JournalStore.replay`` is the *recovery* read path (whole journal,
once, into a restarting service), the reader is the *observability*
read path: poll-driven, resumable, and safe to run while the service
is writing -- including while it compacts.

What one ``poll`` guarantees:

* **Only complete lines are consumed.**  A line not yet terminated by
  a newline -- an append in flight, or a tail truncated by a crash --
  is left unconsumed; the cursor does not advance past it, so the
  record is delivered whole on a later poll once (if ever) the line
  completes.
* **The same validity rules as recovery.**  Decoding and CRC
  verification go through the one shared
  :func:`~repro.service.store.decode_journal_line` implementation;
  undecodable lines and checksum mismatches are skipped with a
  warning and counted, never raised.
* **Unknown kinds are survivable.**  A journal written by a *newer*
  code version may contain record kinds this reader has no idea about.
  Each unknown kind is warn-logged once, counted in
  :attr:`JournalReader.unknown_kinds` and skipped, so a
  forward-version journal degrades to a partial report instead of a
  crash.
* **Compaction is detected, not raced.**  Compaction atomically
  replaces the journal file with a snapshot whose sequence numbers
  restart at 1.  The reader fingerprints the segment it is tailing
  (first line + sequence watermark); when a poll finds the
  fingerprint changed, it re-resolves the segment from the start and
  reports ``reset=True`` so the consumer knows to rebuild rather than
  double-count.

The cursor is a plain serializable value (:class:`ReaderCursor`), so a
follow-mode consumer can persist it and resume across its own
restarts.
"""

from __future__ import annotations

import logging
import zlib
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.service.store import (
    JOURNAL_FILENAME,
    KNOWN_KINDS,
    JournalRecord,
    decode_journal_line,
)

__all__ = ["ReaderCursor", "PollResult", "JournalReader"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ReaderCursor:
    """Resumable position inside one journal segment.

    ``offset`` is the byte offset just past the last fully-consumed
    line; ``seq`` the highest record sequence number delivered;
    ``fingerprint`` identifies the segment (CRC32 of its first line),
    so a cursor taken before a compaction cannot silently be applied
    to the rewritten journal.
    """

    offset: int = 0
    seq: int = 0
    fingerprint: int | None = None

    def to_payload(self) -> dict:
        """Plain-JSON form, for consumers that persist their cursor."""
        return {"offset": self.offset, "seq": self.seq,
                "fingerprint": self.fingerprint}

    @classmethod
    def from_payload(cls, payload: dict) -> "ReaderCursor":
        fingerprint = payload.get("fingerprint")
        return cls(offset=int(payload.get("offset", 0)),
                   seq=int(payload.get("seq", 0)),
                   fingerprint=(None if fingerprint is None
                                else int(fingerprint)))


@dataclass(frozen=True)
class PollResult:
    """What one :meth:`JournalReader.poll` observed.

    ``reset`` is ``True`` when the segment the previous cursor pointed
    into no longer exists (compaction replaced it, or the journal was
    removed): ``records`` then restarts from the beginning of the
    *current* segment and any state derived from earlier polls must be
    rebuilt.
    """

    records: tuple[JournalRecord, ...]
    cursor: ReaderCursor
    reset: bool = False


class JournalReader:
    """Poll-driven tail over one journal directory.

    Parameters
    ----------
    directory:
        The journal directory (``journal.jsonl`` inside it; a missing
        file or directory reads as an empty journal).
    known_kinds:
        Record kinds this reader considers known; anything else is
        warn-logged once and counted.  Defaults to the full
        :data:`~repro.service.store.KNOWN_KINDS` registry.
    """

    def __init__(self, directory, *,
                 known_kinds: frozenset[str] = KNOWN_KINDS):
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_FILENAME
        self.known_kinds = frozenset(known_kinds)
        #: Unknown-kind occurrences seen by this reader, kind -> count.
        self.unknown_kinds: Counter[str] = Counter()
        #: Lines skipped as undecodable / checksum-mismatched.
        self.corrupt_lines = 0
        self._warned_kinds: set[str] = set()

    def health(self) -> dict:
        """Journal-health counters accumulated by this reader.

        What :func:`~repro.analytics.report.build_report` embeds in
        the report's ``journal`` section so corrupt or
        forward-version records stop being an invisible log line:
        ``corrupt_lines`` (undecodable or checksum-mismatched) and
        ``unknown_kinds`` (kind -> occurrences outside
        ``known_kinds``).
        """
        return {
            "corrupt_lines": self.corrupt_lines,
            "unknown_kinds": dict(sorted(self.unknown_kinds.items())),
        }

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read_all(self) -> list[JournalRecord]:
        """Snapshot read: every valid record currently in the journal."""
        return list(self.poll().records)

    def poll(self, cursor: ReaderCursor | None = None) -> PollResult:
        """Read every complete record appended since ``cursor``.

        With ``cursor=None`` the whole current segment is read.  Never
        raises on journal content; an unreadable file reads as empty
        (the writer may be mid-compaction -- the next poll re-resolves).
        """
        cursor = cursor or ReaderCursor()
        data = self._read_bytes()
        if data is None:
            # No journal (yet, or anymore).  An established cursor
            # pointing into a vanished segment is a reset; a fresh
            # cursor just sees an empty journal.
            reset = cursor.fingerprint is not None
            return PollResult(records=(), cursor=ReaderCursor(), reset=reset)

        fingerprint = self._fingerprint(data)
        reset = (cursor.fingerprint is not None
                 and cursor.fingerprint != fingerprint)
        if reset or cursor.fingerprint is None:
            # New segment (first poll, or compaction swapped the file
            # under us): re-resolve from the start.
            cursor = ReaderCursor(fingerprint=fingerprint)
        if len(data) < cursor.offset:
            # Same first line but the file shrank: a rewrite that kept
            # its head.  Treat as a segment change too.
            cursor = ReaderCursor(fingerprint=fingerprint)
            reset = True

        records, consumed = self._decode_from(data, cursor.offset)
        seq = max((r.seq for r in records), default=cursor.seq)
        new_cursor = ReaderCursor(offset=cursor.offset + consumed, seq=seq,
                                  fingerprint=fingerprint)
        return PollResult(records=tuple(records), cursor=new_cursor,
                          reset=reset)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _read_bytes(self) -> bytes | None:
        try:
            return self.path.read_bytes()
        except OSError:
            return None

    @staticmethod
    def _fingerprint(data: bytes) -> int | None:
        """Identity of the segment: CRC32 of its first line."""
        head, newline, _rest = data.partition(b"\n")
        if not newline:
            return None  # no complete line yet; identity undecided
        return zlib.crc32(head)

    def _decode_from(self, data: bytes,
                     offset: int) -> tuple[list[JournalRecord], int]:
        """Decode complete lines in ``data[offset:]``.

        Returns the valid records plus the number of bytes consumed
        (up to and including the last newline -- a trailing partial
        line is left for a later poll).
        """
        chunk = data[offset:]
        end = chunk.rfind(b"\n")
        if end < 0:
            return [], 0
        consumed = end + 1
        records: list[JournalRecord] = []
        for lineno, raw_line in enumerate(
                chunk[:consumed].split(b"\n")[:-1], start=1):
            line = raw_line.decode("utf-8", errors="replace")
            record, status = decode_journal_line(line, lineno=lineno,
                                                 path=self.path)
            if record is None:
                if status in ("corrupt-line", "crc-mismatch"):
                    self.corrupt_lines += 1
                continue
            if record.kind not in self.known_kinds:
                # Forward-version journal: a kind this code has never
                # heard of is warn-and-skipped, never a crash.
                self.unknown_kinds[record.kind] += 1
                if record.kind not in self._warned_kinds:
                    self._warned_kinds.add(record.kind)
                    logger.warning(
                        "journal %s contains unknown record kind %r "
                        "(forward-version journal?); skipping",
                        self.path, record.kind)
                continue
            records.append(record)
        return records, consumed
