"""Deterministic fleet-report building and rendering.

:func:`build_report` folds a journal record stream through the
standard reducer set (:mod:`repro.analytics.slo`) into one plain-JSON
document; :func:`render_json` and :func:`render_markdown` turn that
document into the two operator-facing formats behind
``python -m repro report`` and :meth:`Anubis.fleet_report`.

Determinism is a contract, not an accident: the report contains no
wall-clock timestamps, hostnames or iteration-order artifacts -- every
mapping is emitted sorted -- so two replays of the same journal
produce byte-identical output.  CI leans on this (the chaos-soak
report is diffed across two replays), and so does any operator diffing
this week's report against last week's.

The module also owns the shared table formatters.  The control
plane's :meth:`ServiceMetrics.format_table` and the quality ledger's
:meth:`TelemetryLedger.format_table` used to carry duplicated
``f"{key:<24} {value}"`` blocks with drifting widths; both now route
through :func:`kv_table` here.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.analytics.slo import default_reducers
from repro.service.store import RecordKind

__all__ = [
    "kv_table",
    "markdown_table",
    "build_report",
    "render_json",
    "render_markdown",
    "report_from_history",
]


# ----------------------------------------------------------------------
# Shared table formatters
# ----------------------------------------------------------------------
def _format_value(value: object, *, float_digits: int = 4) -> str:
    """One scalar, formatted stably (floats fixed-width, no repr noise)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    if value is None:
        return "-"
    return str(value)


def kv_table(rows, *, key_width: int = 24, header: tuple[str, str] | None = None,
             float_digits: int = 4) -> str:
    """Align key/value pairs into the one plain-text summary table.

    ``rows`` is a mapping or an iterable of ``(key, value)`` pairs,
    emitted in the given order (pass a sorted iterable for sorted
    output).  Keys longer than ``key_width`` still get one separating
    space rather than colliding with their value.
    """
    pairs = rows.items() if hasattr(rows, "items") else rows
    lines = []
    if header is not None:
        lines.append(f"{header[0]:<{key_width}} {header[1]}")
    for key, value in pairs:
        rendered = _format_value(value, float_digits=float_digits)
        lines.append(f"{str(key):<{key_width}} {rendered}")
    return "\n".join(lines)


def markdown_table(headers, rows, *, float_digits: int = 4) -> str:
    """A GitHub-flavored pipe table from ``headers`` and row tuples."""
    head = [str(h) for h in headers]
    body = [[_format_value(cell, float_digits=float_digits) for cell in row]
            for row in rows]
    widths = [max(len(head[i]), *(len(r[i]) for r in body), 3) if body
              else max(len(head[i]), 3)
              for i in range(len(head))]
    def line(cells):
        return "| " + " | ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)) + " |"
    out = [line(head),
           "| " + " | ".join("-" * w for w in widths) + " |"]
    out.extend(line(row) for row in body)
    return "\n".join(out)


# ----------------------------------------------------------------------
# Report building
# ----------------------------------------------------------------------
def build_report(records, *, fleet_size: int | None = None,
                 buckets: int = 8, curve_points: int = 16,
                 journal_health: dict | None = None) -> dict:
    """Fold journal records into the fleet SLO report document.

    ``records`` is any iterable of
    :class:`~repro.service.store.JournalRecord` (one full segment, or
    everything a :class:`~repro.analytics.reader.JournalReader`
    delivered so far).  ``journal_health`` is the reader's
    :meth:`~repro.analytics.reader.JournalReader.health` dict
    (``corrupt_lines`` / ``unknown_kinds``); when given it is merged
    into the ``journal`` section so skipped lines are visible in the
    report instead of only in the log.  The result is plain JSON:
    section name -> reducer result, plus a ``journal`` section
    describing what was read.  Deterministic -- same records,
    byte-identical report.
    """
    reducers = default_reducers(fleet_size=fleet_size, buckets=buckets,
                                curve_points=curve_points)
    by_kind: Counter[str] = Counter()
    count = 0
    max_seq = 0
    pipeline = None
    for record in records:
        count += 1
        max_seq = max(max_seq, record.seq)
        by_kind[str(record.kind)] += 1
        if record.kind == RecordKind.PIPELINE_STATS:
            # Stage counters are cumulative; the latest record wins.
            pipeline = record.payload.get("stages", {})
        for reducer in reducers:
            reducer.consume(record)
    report = {reducer.name: reducer.result() for reducer in reducers}
    if pipeline is not None:
        report["pipeline"] = {str(stage): dict(stats)
                              for stage, stats in sorted(pipeline.items())}
    report["journal"] = {
        "records": count,
        "max_seq": max_seq,
        "by_kind": dict(sorted(by_kind.items())),
    }
    if journal_health is not None:
        report["journal"]["corrupt_lines"] = int(
            journal_health.get("corrupt_lines", 0))
        report["journal"]["unknown_kinds"] = dict(sorted(
            journal_health.get("unknown_kinds", {}).items()))
    return report


def report_from_history(anubis) -> dict:
    """A facade-level report for an Anubis run without a journal.

    Covers what the in-memory facade knows -- event history summary
    and measurement-pipeline stage counters -- in the same document
    shape (a subset of :func:`build_report` sections), so
    ``Anubis.fleet_report()`` works with or without a service journal
    behind it.
    """
    summary = anubis.history_summary()
    pipeline = summary.pop("pipeline", {})
    return {
        "service": {
            "events_completed": summary["events"],
            "validations_run": summary["validated"],
            "policy_skips": summary["skipped"],
            "nodes_quarantined": summary["defective_nodes_flagged"],
            "events_by_kind": dict(sorted(summary["by_kind"].items())),
        },
        "pipeline": {stage: dict(stats)
                     for stage, stats in sorted(pipeline.items())},
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_json(report: dict) -> str:
    """Canonical JSON rendering: sorted keys, stable indentation."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def _scalar_rows(section: dict) -> list[tuple[str, object]]:
    """The scalar (non-container) entries of one section, sorted."""
    return [(key, value) for key, value in sorted(section.items())
            if not isinstance(value, (dict, list, tuple))]


def _md_kv(section: dict) -> str:
    return markdown_table(("key", "value"), _scalar_rows(section))


def render_markdown(report: dict) -> str:
    """The operator-facing markdown fleet report.

    Renders whatever sections the document carries (a
    :func:`report_from_history` subset renders fine), in a fixed
    section order, from the same dict :func:`render_json` serializes
    -- so the two formats can never disagree.
    """
    out: list[str] = ["# Fleet validation report", ""]

    journal = report.get("journal")
    if journal is not None:
        out += ["## Journal", "", _md_kv(journal), ""]
        if journal.get("by_kind"):
            out += [markdown_table(
                ("record kind", "count"),
                sorted(journal["by_kind"].items())), ""]
        if journal.get("unknown_kinds"):
            out += ["Unknown record kinds (forward-version journal?):",
                    "", markdown_table(
                        ("unknown kind", "count"),
                        sorted(journal["unknown_kinds"].items())), ""]

    service = report.get("service")
    if service is not None:
        out += ["## Service counters", "", _md_kv(service), ""]
        if service.get("events_by_kind"):
            out += [markdown_table(
                ("event kind", "count"),
                sorted(service["events_by_kind"].items())), ""]

    mtbi = report.get("mtbi")
    if mtbi is not None:
        out += ["## MTBI (mean time between incidents)", "",
                _md_kv(mtbi), ""]
        if mtbi.get("trend"):
            out += [markdown_table(
                ("bucket", "node_hours", "incidents", "mtbi_hours"),
                [(i + 1, b["node_hours"], b["incidents"], b["mtbi_hours"])
                 for i, b in enumerate(mtbi["trend"])]), ""]
        if mtbi.get("worst_nodes"):
            out += ["Worst nodes:", "", markdown_table(
                ("node", "incidents", "mtbi_hours"),
                [(n["node_id"], n["incidents"], n["mtbi_hours"])
                 for n in mtbi["worst_nodes"]]), ""]

    availability = report.get("availability")
    if availability is not None:
        out += ["## Availability vs. validation overhead", "",
                _md_kv(availability), ""]
        if availability.get("curve"):
            out += [markdown_table(
                ("validation_s", "availability"),
                [(p["validation_s"], p["availability"])
                 for p in availability["curve"]]), ""]

    eviction = report.get("eviction")
    if eviction is not None:
        out += ["## Eviction precision (proxies)", "", _md_kv(eviction), ""]
        if eviction.get("repeat_offenders"):
            out += ["Repeat offenders: "
                    + ", ".join(eviction["repeat_offenders"]), ""]

    breakers = report.get("breakers")
    if breakers is not None:
        out += ["## Circuit breakers", "", _md_kv(breakers), ""]
        opens = breakers.get("opens_by_benchmark", {})
        closes = breakers.get("closes_by_benchmark", {})
        if opens or closes:
            names = sorted(set(opens) | set(closes))
            out += [markdown_table(
                ("benchmark", "opens", "closes"),
                [(name, opens.get(name, 0), closes.get(name, 0))
                 for name in names]), ""]

    rollbacks = report.get("rollbacks")
    if rollbacks is not None:
        out += ["## Criteria rollbacks", "", _md_kv(rollbacks), ""]
        if rollbacks.get("by_pair"):
            out += [markdown_table(
                ("sku/benchmark/metric", "rollbacks"),
                sorted(rollbacks["by_pair"].items())), ""]
        for reason in rollbacks.get("reasons", []):
            out.append(f"- {reason}")
        if rollbacks.get("reasons"):
            out.append("")

    dlq = report.get("dlq")
    if dlq is not None:
        out += ["## Dead-letter queue", "", _md_kv(dlq), ""]
        if dlq.get("depth_series"):
            out += [markdown_table(
                ("seq", "depth"),
                [(p["seq"], p["depth"]) for p in dlq["depth_series"]]), ""]

    sanitization = report.get("sanitization")
    if sanitization is not None:
        out += ["## Sanitization & quarantine", "",
                _md_kv(sanitization), ""]
        if sanitization.get("by_pair"):
            rows = []
            for pair, stats in sorted(sanitization["by_pair"].items()):
                faults = ", ".join(f"{fault}:{count}" for fault, count
                                   in sorted(stats["faults"].items()))
                rows.append((pair, stats["windows"], stats["sanitized_rate"],
                             stats["quarantine_rate"], faults or "-"))
            out += [markdown_table(
                ("sku/benchmark/metric", "windows", "sanitized_rate",
                 "quarantine_rate", "faults"), rows), ""]

    sku = report.get("sku")
    if sku is not None and sku.get("by_sku"):
        out += ["## Per-SKU fleet health", "", markdown_table(
            ("sku", "node_hours", "incidents", "mtbi_hours",
             "repairs", "rollbacks", "windows", "quarantine_rate"),
            [(name, row["node_hours"], row["incidents"],
              row["mtbi_hours"], row["repairs_completed"],
              row["rollbacks"], row["windows"], row["quarantine_rate"])
             for name, row in sorted(sku["by_sku"].items())]), ""]

    supervisor = report.get("supervisor")
    if supervisor is not None:
        out += ["## Shard supervisor", "", _md_kv(supervisor), ""]
        if supervisor.get("restarts_by_shard"):
            out += [markdown_table(
                ("shard", "restarts"),
                sorted(supervisor["restarts_by_shard"].items())), ""]
        if supervisor.get("degraded"):
            out += [markdown_table(
                ("shard", "restarts", "reason"),
                [(d["shard"], d["restarts"], d["reason"])
                 for d in supervisor["degraded"]]), ""]
        if supervisor.get("shed_by_kind"):
            out += ["Load shed by event kind:", "", markdown_table(
                ("event kind", "shed"),
                sorted(supervisor["shed_by_kind"].items())), ""]
        if supervisor.get("drain_reasons"):
            out += ["Clean drains by reason:", "", markdown_table(
                ("reason", "drains"),
                sorted(supervisor["drain_reasons"].items())), ""]
        if supervisor.get("proc_restarts_by_shard"):
            out += ["Worker-process restarts by shard:", "", markdown_table(
                ("shard", "restarts"),
                sorted(supervisor["proc_restarts_by_shard"].items())), ""]

    pipeline = report.get("pipeline")
    if pipeline is not None:
        out += ["## Measurement pipeline", "", markdown_table(
            ("stage", "count", "seconds"),
            [(stage, stats.get("count", 0), stats.get("seconds", 0.0))
             for stage, stats in sorted(pipeline.items())]), ""]

    return "\n".join(out).rstrip("\n") + "\n"
