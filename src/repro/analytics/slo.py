"""Composable, deterministic SLO reducers over journal records.

Each reducer consumes :class:`~repro.service.store.JournalRecord`
objects one at a time (``consume``) and produces a plain-JSON result
(``result``), so the same reducer set serves a one-shot snapshot
report, a follow-mode tail, and the replay benchmark.  Reducers are
**deterministic**: results depend only on the record stream, never on
wall-clock or iteration order, so two replays of the same journal
yield byte-identical reports.

Time axes -- the journal carries no wall-clock timestamps (by design:
replay determinism), so the reducers use the two clocks the records
*do* carry:

* **modeled node-hours** -- each completed validation covers
  ``len(validated_nodes) * duration_hours`` of modeled fleet
  operation; MTBI is measured against this axis, mirroring the
  simulation layer's MTBI-in-hours.
* **validation wall-clock** -- ``validation_seconds`` per completed
  event is the measured cost of validating; the availability curve
  plots against its cumulative sum (the paper's Fig. 8/9 trade-off:
  availability bought per hour spent validating).

The sequence number is the ordering axis for depth-over-time series
(DLQ depth).
"""

from __future__ import annotations

from collections import Counter

from repro.service.store import JournalRecord, RecordKind

__all__ = [
    "ServiceCountersReducer",
    "MTBIReducer",
    "AvailabilityOverheadReducer",
    "EvictionPrecisionReducer",
    "BreakerReducer",
    "RollbackReducer",
    "DLQReducer",
    "SanitizationReducer",
    "SkuReducer",
    "SupervisorReducer",
    "default_reducers",
    "reduce_records",
]

#: Lifecycle states that keep a node out of the schedulable pool.
_UNAVAILABLE_STATES = frozenset({"quarantined", "in-repair", "returning"})


def _round(value: float, digits: int = 6) -> float:
    """Stable rounding so float noise cannot leak into report bytes."""
    return round(float(value), digits)


class ServiceCountersReducer:
    """Fleet-level throughput and latency counters.

    Aggregates what the control plane's :class:`ServiceMetrics` tracks
    in memory, but derived purely from the journal -- so it survives
    restarts and counts exactly what was durably recorded.
    """

    name = "service"

    def __init__(self) -> None:
        self.events_enqueued = 0
        self.events_coalesced = 0
        self.events_completed = 0
        self.events_failed = 0
        self.events_dead_lettered = 0
        self.policy_skips = 0
        self.validations_run = 0
        self.nodes_validated = 0
        self.nodes_quarantined = 0
        self.by_kind: Counter[str] = Counter()
        self.queue_latency_total = 0.0
        self.queue_latency_max = 0.0
        self.validation_seconds_total = 0.0
        self.criteria_snapshots = 0

    def consume(self, record: JournalRecord) -> None:
        payload = record.payload
        if record.kind == RecordKind.EVENT_ENQUEUED:
            self.events_enqueued += 1
            event = payload.get("event", {})
            self.by_kind[str(event.get("kind", "unknown"))] += 1
        elif record.kind == RecordKind.EVENT_COALESCED:
            self.events_coalesced += 1
        elif record.kind == RecordKind.EVENT_FAILED:
            self.events_failed += 1
        elif record.kind == RecordKind.EVENT_DEAD_LETTERED:
            self.events_dead_lettered += 1
        elif record.kind == RecordKind.CRITERIA_SNAPSHOT:
            self.criteria_snapshots += 1
        elif record.kind == RecordKind.EVENT_COMPLETED:
            self.events_completed += 1
            latency = float(payload.get("queue_latency_seconds", 0.0))
            self.queue_latency_total += latency
            self.queue_latency_max = max(self.queue_latency_max, latency)
            if payload.get("skipped", False):
                self.policy_skips += 1
            else:
                self.validations_run += 1
                self.nodes_validated += len(
                    payload.get("validated_nodes", []))
                self.nodes_quarantined += len(payload.get("defective", []))
                self.validation_seconds_total += float(
                    payload.get("validation_seconds", 0.0))

    def result(self) -> dict:
        completed = max(self.events_completed, 1)
        return {
            "events_enqueued": self.events_enqueued,
            "events_coalesced": self.events_coalesced,
            "events_completed": self.events_completed,
            "events_failed": self.events_failed,
            "events_dead_lettered": self.events_dead_lettered,
            "events_by_kind": dict(sorted(self.by_kind.items())),
            "policy_skips": self.policy_skips,
            "validations_run": self.validations_run,
            "nodes_validated": self.nodes_validated,
            "nodes_quarantined": self.nodes_quarantined,
            "defect_rate": _round(
                self.nodes_quarantined / max(self.nodes_validated, 1)),
            "criteria_snapshots": self.criteria_snapshots,
            "queue_latency_mean_s": _round(
                self.queue_latency_total / completed),
            "queue_latency_max_s": _round(self.queue_latency_max),
            "validation_total_s": _round(self.validation_seconds_total),
        }


class MTBIReducer:
    """MTBI trend, fleet-wide and per node, over modeled node-hours.

    An *incident* is a node entering quarantine.  The observation
    clock is modeled node-hours: each completed validation of N nodes
    over a ``duration_hours`` horizon contributes ``N * hours``.
    Fleet MTBI = observed node-hours / incidents; the trend splits the
    stream into ``buckets`` equal spans of node-hours so an improving
    fleet (validation catching defects early, as the paper's Fig. 9
    MTBI-improvement argues) shows a rising curve.
    """

    name = "mtbi"

    def __init__(self, buckets: int = 8):
        self.buckets = max(int(buckets), 1)
        self.node_hours = 0.0
        self.incidents = 0
        self.per_node_hours: Counter[str] = Counter()
        self.per_node_incidents: Counter[str] = Counter()
        #: (cumulative node-hours, cumulative incidents) observations,
        #: one per incident-bearing or hour-bearing record.
        self._points: list[tuple[float, int]] = []

    def consume(self, record: JournalRecord) -> None:
        payload = record.payload
        if record.kind == RecordKind.EVENT_COMPLETED:
            nodes = payload.get("validated_nodes", [])
            hours = float(payload.get("duration_hours", 0.0))
            if nodes and hours > 0.0:
                self.node_hours += hours * len(nodes)
                for node_id in nodes:
                    self.per_node_hours[str(node_id)] += hours
                self._points.append((self.node_hours, self.incidents))
        elif (record.kind == RecordKind.TRANSITION
                and payload.get("new") == "quarantined"):
            self.incidents += 1
            self.per_node_incidents[str(payload.get("node_id", ""))] += 1
            self._points.append((self.node_hours, self.incidents))

    def _trend(self) -> list[dict]:
        if not self._points or self.node_hours <= 0.0:
            return []
        span = self.node_hours / self.buckets
        trend = []
        cursor = 0
        prev_hours, prev_incidents = 0.0, 0
        for bucket in range(1, self.buckets + 1):
            edge = span * bucket
            hours_at_edge, incidents_at_edge = prev_hours, prev_incidents
            while cursor < len(self._points) and self._points[cursor][0] <= edge:
                hours_at_edge, incidents_at_edge = self._points[cursor]
                cursor += 1
            bucket_hours = hours_at_edge - prev_hours
            bucket_incidents = incidents_at_edge - prev_incidents
            trend.append({
                "node_hours": _round(bucket_hours),
                "incidents": bucket_incidents,
                "mtbi_hours": (_round(bucket_hours / bucket_incidents)
                               if bucket_incidents else None),
            })
            prev_hours, prev_incidents = hours_at_edge, incidents_at_edge
        return trend

    def result(self) -> dict:
        worst = sorted(
            self.per_node_incidents.items(),
            key=lambda item: (-item[1], item[0]))[:10]
        return {
            "node_hours_observed": _round(self.node_hours),
            "incidents": self.incidents,
            "fleet_mtbi_hours": (_round(self.node_hours / self.incidents)
                                 if self.incidents else None),
            "trend": self._trend(),
            "worst_nodes": [
                {"node_id": node_id, "incidents": count,
                 "mtbi_hours": (_round(self.per_node_hours[node_id] / count)
                                if count else None)}
                for node_id, count in worst
            ],
        }


class AvailabilityOverheadReducer:
    """Availability vs. cumulative validation overhead (Fig. 8/9).

    Tracks every node's lifecycle state from transition records;
    availability at any point is the fraction of known nodes *not*
    stuck in the repair pipeline (quarantined / in-repair /
    returning).  Each completed validation appends a curve point at
    x = cumulative validation wall-clock seconds, so the curve reads
    as "how much availability did each hour spent validating buy".
    Down-sampled to at most ``curve_points`` evenly spread points
    (first and last always kept).
    """

    name = "availability"

    def __init__(self, curve_points: int = 16, fleet_size: int | None = None):
        self.curve_points = max(int(curve_points), 2)
        self.fleet_size = fleet_size
        self.validation_seconds = 0.0
        self.states: dict[str, str] = {}
        self._curve: list[dict] = []
        self._availability_weighted = 0.0
        self._availability_points = 0

    def _fleet(self) -> int:
        if self.fleet_size is not None:
            return max(int(self.fleet_size), len(self.states), 1)
        return max(len(self.states), 1)

    def _availability(self) -> float:
        unavailable = sum(1 for state in self.states.values()
                          if state in _UNAVAILABLE_STATES)
        return 1.0 - unavailable / self._fleet()

    def consume(self, record: JournalRecord) -> None:
        payload = record.payload
        if record.kind == RecordKind.TRANSITION:
            self.states[str(payload.get("node_id", ""))] = \
                str(payload.get("new", ""))
        elif record.kind == RecordKind.STATE_SNAPSHOT:
            for node_id, state in payload.get("states", {}).items():
                self.states[str(node_id)] = str(state)
        elif record.kind == RecordKind.EVENT_COMPLETED:
            self.validation_seconds += float(
                payload.get("validation_seconds", 0.0))
            availability = self._availability()
            self._availability_weighted += availability
            self._availability_points += 1
            self._curve.append({
                "validation_s": _round(self.validation_seconds),
                "availability": _round(availability),
            })

    def result(self) -> dict:
        curve = self._curve
        if len(curve) > self.curve_points:
            step = (len(curve) - 1) / (self.curve_points - 1)
            curve = [curve[round(i * step)]
                     for i in range(self.curve_points)]
        return {
            "fleet_size": self._fleet() if self.states else 0,
            "validation_total_s": _round(self.validation_seconds),
            "availability_now": (_round(self._availability())
                                 if self.states else None),
            "availability_mean": (
                _round(self._availability_weighted
                       / self._availability_points)
                if self._availability_points else None),
            "curve": curve,
        }


class EvictionPrecisionReducer:
    """Eviction-precision proxies from quarantine / repair outcomes.

    The journal has no ground truth about which evictions were
    justified, so this reducer reports the two observable proxies:

    * ``repeat_offender_rate`` -- of the nodes ever quarantined, the
      fraction quarantined again after completing repair.  A high rate
      suggests real recurring hardware faults (evictions were
      precise) or ineffective repair.
    * ``repair_return_rate`` -- completed repairs per quarantine; a
      rate well below 1 means nodes are piling up mid-pipeline.
    """

    name = "eviction"

    def __init__(self) -> None:
        self.quarantines = 0
        self.repairs_completed = 0
        self.requarantines_after_repair = 0
        self._quarantined_ever: set[str] = set()
        self._repaired_once: set[str] = set()
        self._repeat_offenders: set[str] = set()

    def consume(self, record: JournalRecord) -> None:
        if record.kind != RecordKind.TRANSITION:
            return
        payload = record.payload
        node_id = str(payload.get("node_id", ""))
        new = payload.get("new")
        if new == "quarantined":
            self.quarantines += 1
            if node_id in self._repaired_once:
                self.requarantines_after_repair += 1
                self._repeat_offenders.add(node_id)
            self._quarantined_ever.add(node_id)
        elif new == "healthy" and payload.get("reason") == "repair-complete":
            self.repairs_completed += 1
            self._repaired_once.add(node_id)

    def result(self) -> dict:
        evicted = len(self._quarantined_ever)
        return {
            "quarantines": self.quarantines,
            "nodes_evicted": evicted,
            "repairs_completed": self.repairs_completed,
            "requarantines_after_repair": self.requarantines_after_repair,
            "repeat_offender_rate": _round(
                len(self._repeat_offenders) / evicted) if evicted else None,
            "repair_return_rate": (_round(
                self.repairs_completed / self.quarantines)
                if self.quarantines else None),
            "repeat_offenders": sorted(self._repeat_offenders),
        }


class BreakerReducer:
    """Circuit-breaker churn per benchmark."""

    name = "breakers"

    def __init__(self) -> None:
        self.opens: Counter[str] = Counter()
        self.closes: Counter[str] = Counter()
        self.transitions = 0

    def consume(self, record: JournalRecord) -> None:
        if record.kind != RecordKind.BREAKER_TRANSITION:
            return
        payload = record.payload
        benchmark = str(payload.get("benchmark", ""))
        self.transitions += 1
        if payload.get("new") == "open":
            self.opens[benchmark] += 1
        elif payload.get("new") == "closed":
            self.closes[benchmark] += 1

    def result(self) -> dict:
        return {
            "transitions": self.transitions,
            "opens_by_benchmark": dict(sorted(self.opens.items())),
            "closes_by_benchmark": dict(sorted(self.closes.items())),
        }


class RollbackReducer:
    """Guarded-rollout rejections per (sku, benchmark, metric).

    Pre-SKU rollback records (no ``sku`` field) fold into the
    ``"unknown"`` legacy bucket.
    """

    name = "rollbacks"

    def __init__(self) -> None:
        self.rollbacks: Counter[tuple[str, str, str]] = Counter()
        self.reasons: list[str] = []

    def consume(self, record: JournalRecord) -> None:
        if record.kind != RecordKind.CRITERIA_ROLLBACK:
            return
        payload = record.payload
        key = (str(payload.get("sku", "unknown")),
               str(payload.get("benchmark", "")),
               str(payload.get("metric", "")))
        self.rollbacks[key] += 1
        reason = str(payload.get("reason", ""))
        if reason and len(self.reasons) < 20:
            self.reasons.append(f"{key[0]}/{key[1]}/{key[2]}: {reason}")

    def result(self) -> dict:
        by_sku: Counter[str] = Counter()
        for (sku, _b, _m), count in self.rollbacks.items():
            by_sku[sku] += count
        return {
            "total": sum(self.rollbacks.values()),
            "by_pair": {f"{s}/{b}/{m}": count for (s, b, m), count
                        in sorted(self.rollbacks.items())},
            "by_sku": dict(sorted(by_sku.items())),
            "reasons": list(self.reasons),
        }


class DLQReducer:
    """Dead-letter-queue depth over the journal sequence axis."""

    name = "dlq"

    def __init__(self, curve_points: int = 16):
        self.curve_points = max(int(curve_points), 2)
        self.depth = 0
        self.parked = 0
        self._series: list[dict] = []

    def consume(self, record: JournalRecord) -> None:
        if record.kind == RecordKind.EVENT_DEAD_LETTERED:
            self.depth += 1
            self.parked += 1
            self._series.append({"seq": record.seq, "depth": self.depth})
        elif record.kind == RecordKind.STATE_SNAPSHOT:
            # Compaction re-baselines the depth to the snapshot's
            # carried dead letters.
            self.depth = len(record.payload.get("dead_letters", []))
            self._series.append({"seq": record.seq, "depth": self.depth})

    def result(self) -> dict:
        series = self._series
        if len(series) > self.curve_points:
            step = (len(series) - 1) / (self.curve_points - 1)
            series = [series[round(i * step)]
                      for i in range(self.curve_points)]
        return {
            "events_parked": self.parked,
            "depth_now": self.depth,
            "depth_series": series,
        }


class SanitizationReducer:
    """Sanitization / quarantine rates by (sku, benchmark, metric).

    Consumes the compact per-event ``batch-provenance`` summaries the
    control plane journals after each validation, plus any full
    ``measurement-batch`` records, and reports per-slice window
    counts, quarantine rates and fault-class histograms.  Pre-SKU
    records fold into the ``"unknown"`` legacy bucket.
    """

    name = "sanitization"

    def __init__(self) -> None:
        self.windows: Counter[tuple[str, str, str]] = Counter()
        self.sanitized: Counter[tuple[str, str, str]] = Counter()
        self.quarantined: Counter[tuple[str, str, str]] = Counter()
        self.faults: dict[tuple[str, str, str], Counter[str]] = {}

    def _fold(self, key: tuple[str, str, str], *, windows: int,
              sanitized: int, quarantined: int, faults: dict) -> None:
        self.windows[key] += windows
        self.sanitized[key] += sanitized
        self.quarantined[key] += quarantined
        if faults:
            bucket = self.faults.setdefault(key, Counter())
            for fault, count in faults.items():
                bucket[str(fault)] += int(count)

    def consume(self, record: JournalRecord) -> None:
        if record.kind == RecordKind.BATCH_PROVENANCE:
            for entry in record.payload.get("provenance", []):
                key = (str(entry.get("sku", "unknown")),
                       str(entry.get("benchmark", "")),
                       str(entry.get("metric", "")))
                self._fold(key,
                           windows=int(entry.get("windows", 0)),
                           sanitized=int(entry.get("sanitized", 0)),
                           quarantined=int(entry.get("quarantined", 0)),
                           faults=entry.get("faults", {}))
        elif record.kind == RecordKind.MEASUREMENT_BATCH:
            payload = record.payload
            key = (str(payload.get("sku", "unknown")),
                   str(payload.get("benchmark", "")),
                   str(payload.get("metric", "")))
            windows = payload.get("windows", [])
            faults: Counter[str] = Counter()
            for window in windows:
                for fault in window.get("faults", []):
                    faults[str(fault)] += 1
            self._fold(key,
                       windows=len(windows),
                       sanitized=sum(1 for w in windows
                                     if w.get("sanitized")),
                       quarantined=sum(1 for w in windows
                                       if w.get("quarantined")),
                       faults=dict(faults))

    def result(self) -> dict:
        pairs = {}
        for key in sorted(self.windows):
            windows = self.windows[key]
            pairs[f"{key[0]}/{key[1]}/{key[2]}"] = {
                "windows": windows,
                "sanitized_rate": (_round(self.sanitized[key] / windows)
                                   if windows else None),
                "quarantine_rate": (_round(self.quarantined[key] / windows)
                                    if windows else None),
                "faults": dict(sorted(self.faults.get(key, {}).items())),
            }
        by_sku: dict[str, dict] = {}
        for (sku, _b, _m), windows in self.windows.items():
            entry = by_sku.setdefault(sku, {"windows": 0, "quarantined": 0})
            entry["windows"] += windows
            entry["quarantined"] += self.quarantined[(sku, _b, _m)]
        for entry in by_sku.values():
            entry["quarantine_rate"] = (
                _round(entry["quarantined"] / entry["windows"])
                if entry["windows"] else None)
        return {
            "windows_total": sum(self.windows.values()),
            "windows_quarantined": sum(self.quarantined.values()),
            "by_pair": pairs,
            "by_sku": dict(sorted(by_sku.items())),
        }


class SkuReducer:
    """Per-hardware-class fleet health: MTBI, evictions, telemetry.

    The heterogeneous-fleet rollup: every journal signal that carries
    (or implies) a SKU is folded into one row per hardware class --
    observed node-hours and incidents (per-SKU MTBI), quarantines and
    repairs (eviction pipeline), criteria rollbacks, and sanitization
    window counts.  Records from pre-SKU journals carry no ``sku``
    field and land in the ``"unknown"`` legacy bucket, so a v1 journal
    replays into a one-row table instead of failing.

    Node-hours come from ``event-completed`` records, which list node
    ids but not classes; the reducer learns each node's class from the
    ``transition`` records that do carry one and resolves the
    attribution at :meth:`result` time.
    """

    name = "sku"

    def __init__(self) -> None:
        self._node_sku: dict[str, str] = {}
        self._node_hours: Counter[str] = Counter()
        self.incidents: Counter[str] = Counter()
        self.repairs: Counter[str] = Counter()
        self.rollbacks: Counter[str] = Counter()
        self.windows: Counter[str] = Counter()
        self.quarantined_windows: Counter[str] = Counter()
        self._repaired_once: set[str] = set()
        self.requarantines: Counter[str] = Counter()

    def _sku_of(self, node_id: str) -> str:
        return self._node_sku.get(node_id, "unknown")

    def consume(self, record: JournalRecord) -> None:
        payload = record.payload
        if record.kind == RecordKind.EVENT_COMPLETED:
            hours = float(payload.get("duration_hours", 0.0))
            if hours > 0.0:
                for node_id in payload.get("validated_nodes", []):
                    self._node_hours[str(node_id)] += hours
        elif record.kind == RecordKind.TRANSITION:
            node_id = str(payload.get("node_id", ""))
            sku = str(payload.get("sku", "unknown"))
            if sku != "unknown":
                self._node_sku[node_id] = sku
            if payload.get("new") == "quarantined":
                self.incidents[self._sku_of(node_id)] += 1
                if node_id in self._repaired_once:
                    self.requarantines[self._sku_of(node_id)] += 1
            elif (payload.get("new") == "healthy"
                    and payload.get("reason") == "repair-complete"):
                self.repairs[self._sku_of(node_id)] += 1
                self._repaired_once.add(node_id)
        elif record.kind == RecordKind.CRITERIA_ROLLBACK:
            self.rollbacks[str(payload.get("sku", "unknown"))] += 1
        elif record.kind == RecordKind.BATCH_PROVENANCE:
            for entry in payload.get("provenance", []):
                sku = str(entry.get("sku", "unknown"))
                self.windows[sku] += int(entry.get("windows", 0))
                self.quarantined_windows[sku] += int(
                    entry.get("quarantined", 0))

    def result(self) -> dict:
        hours: Counter[str] = Counter()
        for node_id, node_hours in self._node_hours.items():
            hours[self._sku_of(node_id)] += node_hours
        skus = sorted(set(hours) | set(self.incidents) | set(self.rollbacks)
                      | set(self.windows) | set(self.repairs)
                      | set(self._node_sku.values()))
        by_sku = {}
        for sku in skus:
            windows = self.windows[sku]
            incidents = self.incidents[sku]
            by_sku[sku] = {
                "node_hours": _round(hours[sku]),
                "incidents": incidents,
                "mtbi_hours": (_round(hours[sku] / incidents)
                               if incidents and hours[sku] else None),
                "repairs_completed": self.repairs[sku],
                "requarantines_after_repair": self.requarantines[sku],
                "rollbacks": self.rollbacks[sku],
                "windows": windows,
                "quarantine_rate": (
                    _round(self.quarantined_windows[sku] / windows)
                    if windows else None),
            }
        return {"by_sku": by_sku}


class SupervisorReducer:
    """Supervision-tree health from shard-fabric journal records.

    A sharded deployment runs one journal per shard; this reducer is
    written to work per shard (one journal's records) *or* over a
    concatenation of several shards' records -- per-shard figures are
    keyed by the shard index the records carry.  Reported:

    * **restarts** -- the per-shard restart high-water mark carried by
      ``shard-heartbeat`` records (the supervisor stamps each beat
      with the shard's restart count);
    * **failovers** -- ``shard-handoff`` records (events moved off a
      degraded shard) and ``shard-degraded`` escalations with reasons;
    * **shed rate** -- ``load-shed`` records per enqueued event, the
      fraction of accepted work admission control dropped under
      overload;
    * **process fabric** -- ``proc-heartbeat`` liveness beats and
      ``proc-restart`` respawns journaled by the process supervisor
      (:mod:`repro.service.procfabric`), per shard;
    * **clean shutdown** -- a journal whose *final* record is a
      ``fabric-drain`` was shut down gracefully (drained, fsynced);
      anything after the last drain means the writer came back up, and
      no drain at all means the last incarnation crashed.
    """

    name = "supervisor"

    def __init__(self) -> None:
        self.heartbeats = 0
        self.events_enqueued = 0
        self.events_shed = 0
        self.shed_by_kind: Counter[str] = Counter()
        self.handoffs = 0
        self.handoffs_by_target: Counter[str] = Counter()
        self.degraded: list[dict] = []
        self.restarts_by_shard: dict[str, int] = {}
        self.last_beat_by_shard: dict[str, dict] = {}
        self.drains = 0
        self.drain_reasons: Counter[str] = Counter()
        self.proc_heartbeats = 0
        self.proc_restarts = 0
        self.proc_restarts_by_shard: Counter[str] = Counter()
        self._last_was_drain = False
        self._saw_record = False

    def consume(self, record: JournalRecord) -> None:
        payload = record.payload
        self._saw_record = True
        self._last_was_drain = record.kind == RecordKind.FABRIC_DRAIN
        if record.kind == RecordKind.EVENT_ENQUEUED:
            self.events_enqueued += 1
        elif record.kind == RecordKind.FABRIC_DRAIN:
            self.drains += 1
            self.drain_reasons[str(payload.get("reason", "unknown"))] += 1
        elif record.kind == RecordKind.PROC_HEARTBEAT:
            self.proc_heartbeats += 1
        elif record.kind == RecordKind.PROC_RESTART:
            self.proc_restarts += 1
            self.proc_restarts_by_shard[str(payload.get("shard", "?"))] += 1
        elif record.kind == RecordKind.LOAD_SHED:
            self.events_shed += 1
            self.shed_by_kind[str(payload.get("kind", "unknown"))] += 1
        elif record.kind == RecordKind.SHARD_HANDOFF:
            self.handoffs += 1
            self.handoffs_by_target[str(payload.get("to_shard", "?"))] += 1
        elif record.kind == RecordKind.SHARD_DEGRADED:
            self.degraded.append({
                "shard": int(payload.get("shard", -1)),
                "restarts": int(payload.get("restarts", 0)),
                "reason": str(payload.get("reason", "")),
            })
        elif record.kind == RecordKind.SHARD_HEARTBEAT:
            self.heartbeats += 1
            shard = str(payload.get("shard", "?"))
            restarts = int(payload.get("restarts", 0))
            self.restarts_by_shard[shard] = max(
                self.restarts_by_shard.get(shard, 0), restarts)
            self.last_beat_by_shard[shard] = {
                "tick": int(payload.get("tick", 0)),
                "progress": int(payload.get("progress", 0)),
                "queue_depth": int(payload.get("queue_depth", 0)),
            }

    def result(self) -> dict:
        return {
            "heartbeats": self.heartbeats,
            "restarts_total": sum(self.restarts_by_shard.values()),
            "restarts_by_shard": dict(sorted(
                self.restarts_by_shard.items())),
            "shards_degraded": len(self.degraded),
            "degraded": sorted(self.degraded,
                               key=lambda d: (d["shard"], d["reason"])),
            "handoffs": self.handoffs,
            "handoffs_by_target": dict(sorted(
                self.handoffs_by_target.items())),
            "events_shed": self.events_shed,
            "shed_by_kind": dict(sorted(self.shed_by_kind.items())),
            "shed_rate": _round(
                self.events_shed / max(self.events_enqueued, 1)),
            "last_heartbeat_by_shard": dict(sorted(
                self.last_beat_by_shard.items())),
            "drains": self.drains,
            "drain_reasons": dict(sorted(self.drain_reasons.items())),
            "clean_shutdown": bool(self._saw_record
                                   and self._last_was_drain),
            "proc_heartbeats": self.proc_heartbeats,
            "proc_restarts": self.proc_restarts,
            "proc_restarts_by_shard": dict(sorted(
                self.proc_restarts_by_shard.items())),
        }


def default_reducers(*, fleet_size: int | None = None,
                     buckets: int = 8, curve_points: int = 16) -> list:
    """The standard fleet-report reducer set, in section order."""
    return [
        ServiceCountersReducer(),
        MTBIReducer(buckets=buckets),
        AvailabilityOverheadReducer(curve_points=curve_points,
                                    fleet_size=fleet_size),
        EvictionPrecisionReducer(),
        BreakerReducer(),
        RollbackReducer(),
        DLQReducer(curve_points=curve_points),
        SanitizationReducer(),
        SkuReducer(),
        SupervisorReducer(),
    ]


def reduce_records(records, reducers=None) -> dict:
    """Run ``records`` through ``reducers``; section name -> result."""
    reducers = default_reducers() if reducers is None else reducers
    for record in records:
        for reducer in reducers:
            reducer.consume(record)
    return {reducer.name: reducer.result() for reducer in reducers}
