"""Operator-facing analytics & reporting plane over the journal.

The journal is the system of record: typed validation events,
measurement-batch provenance, lifecycle transitions, criteria
snapshots and rollbacks, dead letters, breaker transitions and
pipeline stats all land there -- and this package is the read path
that turns it back into the operational picture the paper argues for
(SuperBench Fig. 8/9: availability vs. time spent validating, MTBI
improvement per policy).

``repro.analytics.reader``
    :class:`JournalReader` -- incremental, CRC-verified streaming read
    over a :class:`~repro.service.store.JournalStore` directory:
    tolerates truncated tails, resumes from a seq cursor, re-resolves
    the segment after a racing compaction, warn-and-skips unknown
    record kinds from forward-version journals.
``repro.analytics.slo``
    Composable SLO reducers: MTBI trend, availability vs. cumulative
    validation overhead, eviction-precision proxies, breaker /
    rollback / DLQ frequencies, sanitization rates by
    (benchmark, metric).
``repro.analytics.report``
    Deterministic fleet-report builder plus the markdown / JSON
    renderers and the shared key-value table formatter behind
    ``python -m repro report`` and ``Anubis.fleet_report()``.
"""

from repro.analytics.reader import JournalReader, PollResult, ReaderCursor
from repro.analytics.report import (
    build_report,
    kv_table,
    markdown_table,
    render_json,
    render_markdown,
    report_from_history,
)
from repro.analytics.slo import (
    AvailabilityOverheadReducer,
    BreakerReducer,
    DLQReducer,
    EvictionPrecisionReducer,
    MTBIReducer,
    RollbackReducer,
    SanitizationReducer,
    SkuReducer,
    ServiceCountersReducer,
    default_reducers,
    reduce_records,
)

__all__ = [
    "AvailabilityOverheadReducer",
    "BreakerReducer",
    "DLQReducer",
    "EvictionPrecisionReducer",
    "JournalReader",
    "MTBIReducer",
    "PollResult",
    "ReaderCursor",
    "RollbackReducer",
    "SanitizationReducer",
    "SkuReducer",
    "ServiceCountersReducer",
    "build_report",
    "default_reducers",
    "kv_table",
    "markdown_table",
    "reduce_records",
    "render_json",
    "render_markdown",
    "report_from_history",
]
