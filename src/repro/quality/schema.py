"""Per-(benchmark, metric) telemetry schemas, optionally per SKU.

A :class:`MetricSchema` states what a *plausible* measurement window
for one benchmark metric looks like -- finiteness is implicit (nothing
non-finite is ever plausible), and the schema adds sign, a plausible
unit range, and a minimum sample count.  Schemas deliberately encode
*telemetry* plausibility, not health: a degraded node measuring at a
quarter of the healthy value is inside the plausible range (the
criteria filter must see it and evict the node), while a window whose
values sit three decimal orders away is a unit-scale glitch after a
driver or image update -- dirty telemetry, not evidence about the
node.  The span factor is therefore generous by design.

:func:`schemas_for_suite` derives default schemas from the benchmark
specs themselves: the plausible range brackets each metric's healthy
base value by ``span_factor`` in both directions, and the sample-count
floor is a fraction of the measurement window the runner will actually
keep (micro-benchmarks with single-value samples get a floor of 1).
With ``skus`` it additionally derives one schema per hardware class,
keyed ``(sku, benchmark, metric)`` and centred on that class's scaled
healthy level -- what is plausible for an H100 is not what is
plausible for an A100.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.hardware.sku import performance_factor

__all__ = ["MetricSchema", "schemas_for_suite"]


@dataclass(frozen=True)
class MetricSchema:
    """Plausibility contract for one benchmark metric's telemetry.

    Attributes
    ----------
    benchmark / metric:
        The (benchmark, metric) pair this schema governs.
    sku:
        Hardware class whose plausible range this schema encodes;
        the ``"unknown"`` default marks a class-agnostic schema.
    lower / upper:
        Inclusive plausible value range; ``None`` leaves that side
        unbounded.  ``lower >= 0`` also encodes the sign constraint
        (throughput, bandwidth and latency are never negative).
    min_samples:
        Minimum clean values a window needs to support a verdict;
        shorter windows are quarantined as truncated, never scored.
    unit_scale_factor:
        The scale glitch this schema recognises: when a whole window
        sits above ``upper`` but lands back inside the range after
        division by this factor, it is classified as a unit-scale
        fault rather than pointwise garbage.
    """

    benchmark: str
    metric: str
    lower: float | None = 0.0
    upper: float | None = None
    min_samples: int = 1
    unit_scale_factor: float = 1000.0
    sku: str = "unknown"

    def __post_init__(self):
        if (self.lower is not None and self.upper is not None
                and self.lower > self.upper):
            raise ReproError(
                f"schema for {self.benchmark}/{self.metric}: lower bound "
                f"{self.lower} exceeds upper bound {self.upper}")
        if self.min_samples < 1:
            raise ReproError(
                f"schema for {self.benchmark}/{self.metric}: min_samples "
                f"must be at least 1")
        if self.unit_scale_factor <= 1.0:
            raise ReproError(
                f"schema for {self.benchmark}/{self.metric}: "
                f"unit_scale_factor must exceed 1")


def schemas_for_suite(suite, *, span_factor: float = 100.0,
                      min_window_fraction: float = 0.25,
                      runner=None, skus=None) -> dict:
    """Default schemas for every metric of every benchmark in ``suite``.

    ``span_factor`` brackets each metric's healthy ``base_value``: the
    plausible range is ``[base / span_factor, base * span_factor]`` --
    wide enough that genuine degradation (an order of magnitude) stays
    visible to the criteria filter, narrow enough that a x1000
    unit-scale glitch falls outside.  ``min_window_fraction`` sets the
    sample floor relative to the measurement window the ``runner``
    would keep for the benchmark (falling back to the metric's nominal
    series length without a runner).

    ``skus`` (an iterable of SKU names) additionally emits one schema
    per hardware class under the key ``(sku, benchmark, metric)``,
    with the range centred on the class's scaled healthy level --
    throughput metrics multiply by the SKU's performance factor,
    latency metrics divide.  The class-agnostic ``(benchmark,
    metric)`` schemas are always present as the fallback for windows
    from unlisted classes.
    """
    if span_factor <= 1.0:
        raise ReproError(f"span_factor must exceed 1, got {span_factor}")
    if not 0.0 < min_window_fraction <= 1.0:
        raise ReproError(
            f"min_window_fraction must be in (0, 1], got {min_window_fraction}")
    schemas: dict = {}
    for spec in suite:
        window = runner.window_for(spec) if runner is not None else None
        for metric in spec.metrics:
            expected = metric.series_length
            if window is not None and metric.series_length > 1:
                expected = min(expected, window.measure)
            floor = (1 if expected <= 1
                     else max(2, int(-(-min_window_fraction * expected // 1))))
            schemas[(spec.name, metric.name)] = MetricSchema(
                benchmark=spec.name,
                metric=metric.name,
                lower=metric.base_value / span_factor,
                upper=metric.base_value * span_factor,
                min_samples=floor,
            )
            for sku in (skus or ()):
                factor = performance_factor(sku)
                level = (metric.base_value * factor
                         if metric.higher_is_better
                         else metric.base_value / factor)
                schemas[(sku, spec.name, metric.name)] = MetricSchema(
                    benchmark=spec.name,
                    metric=metric.name,
                    lower=level / span_factor,
                    upper=level * span_factor,
                    min_samples=floor,
                    sku=sku,
                )
    return schemas
