"""repro.quality -- measurement-plane robustness layer.

Three lines of defence between raw telemetry and fleet-wide verdicts:

1. **Sanitization at ingestion** (:mod:`repro.quality.sanitize`):
   per-(benchmark, metric) plausibility schemas quarantine implausible
   samples with provenance records instead of raising.
2. **Contamination-resistant learning** lives in
   :mod:`repro.core.criteria` (trimmed medoid aggregation) and
   :mod:`repro.core.fastdist` (explicit non-finite policies).
3. **Guarded criteria rollout** (:mod:`repro.quality.rollout`):
   shadow-evaluation of freshly learned criteria against the previous
   measurement window before activation, with journaled rollback.
"""

from repro.quality.rollout import (
    RolloutConfig,
    RolloutDecision,
    evaluate_rollout,
)
from repro.quality.sanitize import (
    FAULT_NON_FINITE,
    FAULT_OUT_OF_RANGE,
    FAULT_TRUNCATED,
    FAULT_UNIT_SCALE,
    QuarantineRecord,
    SanitizedWindow,
    Sanitizer,
    TelemetryLedger,
    sanitize_window,
)
from repro.quality.schema import MetricSchema, schemas_for_suite

__all__ = [
    "MetricSchema",
    "schemas_for_suite",
    "FAULT_NON_FINITE",
    "FAULT_OUT_OF_RANGE",
    "FAULT_TRUNCATED",
    "FAULT_UNIT_SCALE",
    "QuarantineRecord",
    "SanitizedWindow",
    "Sanitizer",
    "TelemetryLedger",
    "sanitize_window",
    "RolloutConfig",
    "RolloutDecision",
    "evaluate_rollout",
]
