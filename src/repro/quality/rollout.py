"""Guarded criteria rollout: shadow-evaluate before activation.

Criteria are learned without ground truth (paper §3.4), so a poisoned
learning pass -- contaminated telemetry, a bad driver rollout skewing
half the fleet's windows, an operator learning from too few nodes --
produces criteria that look perfectly well-formed and then evict
healthy nodes fleet-wide.  The guard treats every freshly learned
criteria as a *candidate* and walks it through a small state machine:

::

    CANDIDATE --shadow-eval--> ACTIVE        (accepted; journaled)
        |
        +---------------------> ROLLED_BACK  (rejected; previous
                                              criteria stays active,
                                              rollback journaled)

The shadow evaluation replays the one-sided online filter
(:func:`repro.core.drift.predicted_eviction_rate`) over the *previous
measurement window's* per-node samples, under both the candidate and
the currently active criteria.  Scoring against the previous window
(not the one the candidate was learned from) is deliberate: a
coherently poisoned learning pass produces criteria that agree
perfectly with their own windows, and only the last trusted window
exposes the skew.  If the candidate's predicted fleet-wide eviction
rate jumps past the active rate by more than the configured budget
(or past the bootstrap cap when no criteria are active yet), the
candidate is rejected.

The service integration (:meth:`repro.service.controlplane.
ValidationService.learn_criteria`) applies the decision: rejected
candidates are rolled back to the previous :class:`MetricCriteria`
object and the rollback is journaled, so a restart recovers the
*active* criteria, never the poisoned candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.drift import predicted_eviction_rate
from repro.exceptions import ReproError

__all__ = ["RolloutConfig", "RolloutDecision", "evaluate_rollout"]


@dataclass(frozen=True)
class RolloutConfig:
    """Guard thresholds for criteria activation.

    Attributes
    ----------
    max_eviction_jump:
        How far (in fleet fraction) the candidate's predicted eviction
        rate may exceed the active criteria's before the candidate is
        rejected.
    max_bootstrap_eviction_rate:
        Absolute cap applied when no criteria are active yet (first
        learn): a bootstrap candidate that would immediately evict more
        than this fraction of the fleet is itself suspect.
    min_shadow_windows:
        Below this many shadow windows the guard abstains and accepts
        (there is not enough data to out-vote the learner).
    """

    max_eviction_jump: float = 0.10
    max_bootstrap_eviction_rate: float = 0.50
    min_shadow_windows: int = 2

    def __post_init__(self):
        if not 0.0 <= self.max_eviction_jump <= 1.0:
            raise ReproError(
                f"max_eviction_jump must be in [0, 1], got "
                f"{self.max_eviction_jump}")
        if not 0.0 <= self.max_bootstrap_eviction_rate <= 1.0:
            raise ReproError(
                f"max_bootstrap_eviction_rate must be in [0, 1], got "
                f"{self.max_bootstrap_eviction_rate}")
        if self.min_shadow_windows < 1:
            raise ReproError("min_shadow_windows must be at least 1")


@dataclass(frozen=True)
class RolloutDecision:
    """Outcome of shadow-evaluating one candidate criteria.

    ``baseline_rate`` is ``None`` on bootstrap (no active criteria to
    compare against).  ``learn_path`` records which engine path
    produced the candidate (``"exact"``, ``"full"``, ``"delta"``,
    ``"cached"``, or ``""`` when the classic learner ran) -- the
    control plane threads it through so a rollback can be attributed
    to the approximation that produced the candidate.
    """

    benchmark: str
    metric: str
    accepted: bool
    candidate_rate: float
    baseline_rate: float | None
    reason: str
    learn_path: str = ""
    sku: str = "unknown"


def evaluate_rollout(windows, candidate, previous, *, alpha: float,
                     higher_is_better: bool = True,
                     config: RolloutConfig | None = None,
                     benchmark: str = "", metric: str = "",
                     learn_path: str = "",
                     sku: str = "unknown") -> RolloutDecision:
    """Shadow-evaluate one candidate criteria against one window set.

    ``windows`` are the shadow set's per-node samples -- the last
    *trusted* measurement window when updating existing criteria, or
    the candidate's own learning windows on bootstrap;  ``candidate``
    is the freshly learned criteria sample and ``previous`` the
    currently active one (``None`` on bootstrap).
    """
    config = config or RolloutConfig()
    windows = list(windows)
    if len(windows) < config.min_shadow_windows:
        return RolloutDecision(
            benchmark=benchmark, metric=metric, accepted=True,
            candidate_rate=0.0, baseline_rate=None,
            reason=f"abstained: only {len(windows)} shadow window(s)",
            learn_path=learn_path, sku=sku)

    candidate_rate = predicted_eviction_rate(
        windows, candidate, alpha=alpha, higher_is_better=higher_is_better)
    if previous is None:
        accepted = candidate_rate <= config.max_bootstrap_eviction_rate
        reason = (
            "bootstrap within cap" if accepted else
            f"bootstrap candidate would evict {candidate_rate:.0%} of the "
            f"fleet (cap {config.max_bootstrap_eviction_rate:.0%})")
        return RolloutDecision(
            benchmark=benchmark, metric=metric, accepted=accepted,
            candidate_rate=candidate_rate, baseline_rate=None, reason=reason,
            learn_path=learn_path, sku=sku)

    baseline_rate = predicted_eviction_rate(
        windows, previous, alpha=alpha, higher_is_better=higher_is_better)
    accepted = candidate_rate <= baseline_rate + config.max_eviction_jump
    reason = (
        "within eviction budget" if accepted else
        f"predicted eviction rate jumped {baseline_rate:.0%} -> "
        f"{candidate_rate:.0%} (budget +{config.max_eviction_jump:.0%})")
    return RolloutDecision(
        benchmark=benchmark, metric=metric, accepted=accepted,
        candidate_rate=candidate_rate, baseline_rate=baseline_rate,
        reason=reason, learn_path=learn_path, sku=sku)
