"""Telemetry sanitization at ingestion.

Every measurement window crosses this layer before the Validator sees
it.  Implausible values are *quarantined* -- removed from the window
and recorded with full provenance (node, benchmark, metric, fault
class, example raw value) in a :class:`TelemetryLedger` -- instead of
raised, so one corrupted measurement can neither crash fleet-wide
criteria learning nor evict a healthy node.

Fault taxonomy (the classes a record's ``fault`` field can carry):

* ``non-finite`` -- NaN/Inf values inside a window; the values are
  dropped, the rest of the window stays usable.
* ``out-of-range`` -- pointwise values outside the schema's plausible
  range (including sign violations); dropped likewise.
* ``unit-scale`` -- the *whole* window sits a scale factor above the
  plausible range (driver/image update reporting in the wrong unit);
  the window is quarantined outright, because rescaling it silently
  would launder a telemetry bug into a health verdict.
* ``truncated-window`` -- fewer clean values than the schema's floor
  remain; the window supports no verdict and is quarantined.

Semantics the rest of the system relies on:

* an **empty** raw window passes through untouched -- that is a crash,
  an execution failure, and must keep evicting the node;
* an **all-non-finite** window cleans down to empty and likewise flows
  on as an execution failure -- that is a hang, a defect by definition
  (paper §3.4);
* a **quarantined** metric (unit-scale or truncated) yields *no
  verdict*: the Validator skips it online and criteria learning
  excludes it, because dirty telemetry is evidence about the
  measurement pipeline, not about the node.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass

import numpy as np

from repro.benchsuite.base import BenchmarkResult
from repro.quality.schema import MetricSchema, schemas_for_suite

__all__ = [
    "FAULT_NON_FINITE", "FAULT_OUT_OF_RANGE", "FAULT_UNIT_SCALE",
    "FAULT_TRUNCATED", "QuarantineRecord", "TelemetryLedger",
    "SanitizedWindow", "sanitize_window", "Sanitizer",
]

FAULT_NON_FINITE = "non-finite"
FAULT_OUT_OF_RANGE = "out-of-range"
FAULT_UNIT_SCALE = "unit-scale"
FAULT_TRUNCATED = "truncated-window"

#: Fault classes that quarantine the whole window (no verdict).
_WINDOW_FAULTS = (FAULT_UNIT_SCALE, FAULT_TRUNCATED)


@dataclass(frozen=True)
class QuarantineRecord:
    """Provenance of one quarantine action on one window.

    ``count`` is the number of affected values (for window-level
    faults, the number of values the window still held); ``example``
    preserves one offending raw value for debugging.
    """

    node_id: str
    benchmark: str
    metric: str
    fault: str
    count: int
    example: float | None = None
    detail: str = ""


class TelemetryLedger:
    """Thread-safe accumulator of quarantine records.

    Aggregate counters are unbounded; the raw record trail keeps the
    most recent ``max_records`` entries so a long soak cannot grow the
    ledger without bound.
    """

    def __init__(self, max_records: int = 4096):
        self._lock = threading.Lock()
        self.records: deque[QuarantineRecord] = deque(maxlen=max_records)
        self.by_fault: Counter = Counter()
        self.by_node: Counter = Counter()
        self.values_quarantined = 0
        self.windows_quarantined = 0

    def record(self, rec: QuarantineRecord) -> None:
        with self._lock:
            self.records.append(rec)
            self.by_fault[rec.fault] += 1
            self.by_node[rec.node_id] += 1
            self.values_quarantined += rec.count
            if rec.fault in _WINDOW_FAULTS:
                self.windows_quarantined += 1

    def summary(self) -> dict:
        with self._lock:
            return {
                "values_quarantined": self.values_quarantined,
                "windows_quarantined": self.windows_quarantined,
                "by_fault": dict(self.by_fault),
                "by_node": dict(self.by_node),
            }

    def format_table(self) -> str:
        # Function-level import: quality must stay importable below the
        # analytics layer, which owns the one shared table formatter.
        from repro.analytics.report import kv_table
        summary = self.summary()
        rows = sorted(summary["by_fault"].items())
        rows.append(("values quarantined", summary["values_quarantined"]))
        rows.append(("windows quarantined", summary["windows_quarantined"]))
        return kv_table(rows, header=("fault class", "windows"))


@dataclass
class SanitizedWindow:
    """One window after sanitization.

    ``excluded`` marks windows that support no verdict (unit-scale or
    truncated); ``values`` then still holds whatever survived cleaning,
    for forensics.
    """

    values: np.ndarray
    records: tuple[QuarantineRecord, ...]
    excluded: bool


def sanitize_window(values, schema: MetricSchema, *, node_id: str,
                    benchmark: str, metric: str) -> SanitizedWindow:
    """Apply one schema to one raw window.  Never raises."""
    arr = np.asarray(values, dtype=float).ravel()
    records: list[QuarantineRecord] = []
    if arr.size == 0:
        # Crash: no telemetry to sanitize; stays an execution failure.
        return SanitizedWindow(arr, (), excluded=False)

    finite = np.isfinite(arr)
    if not np.all(finite):
        bad = arr[~finite]
        records.append(QuarantineRecord(
            node_id=node_id, benchmark=benchmark, metric=metric,
            fault=FAULT_NON_FINITE, count=int(bad.size),
            example=float(bad[0])))
        arr = arr[finite]
    if arr.size == 0:
        # Hang (all-NaN): flows on empty, an execution failure.
        return SanitizedWindow(arr, tuple(records), excluded=False)

    # Unit-scale glitch: the whole window is implausibly high but lands
    # back in range after dividing by the scale factor.
    if schema.upper is not None:
        median = float(np.median(arr))
        rescaled = median / schema.unit_scale_factor
        if (median > schema.upper
                and (schema.lower is None or rescaled >= schema.lower)
                and rescaled <= schema.upper):
            records.append(QuarantineRecord(
                node_id=node_id, benchmark=benchmark, metric=metric,
                fault=FAULT_UNIT_SCALE, count=int(arr.size),
                example=median,
                detail=f"median {median:.4g} is ~x{schema.unit_scale_factor:g} "
                       f"above the plausible range"))
            return SanitizedWindow(arr, tuple(records), excluded=True)

    out = np.zeros(arr.size, dtype=bool)
    if schema.lower is not None:
        out |= arr < schema.lower
    if schema.upper is not None:
        out |= arr > schema.upper
    if np.any(out):
        bad = arr[out]
        records.append(QuarantineRecord(
            node_id=node_id, benchmark=benchmark, metric=metric,
            fault=FAULT_OUT_OF_RANGE, count=int(bad.size),
            example=float(bad[0])))
        arr = arr[~out]

    if arr.size < schema.min_samples:
        records.append(QuarantineRecord(
            node_id=node_id, benchmark=benchmark, metric=metric,
            fault=FAULT_TRUNCATED, count=int(arr.size),
            detail=f"{arr.size} clean value(s) < floor {schema.min_samples}"))
        return SanitizedWindow(arr, tuple(records), excluded=True)
    return SanitizedWindow(arr, tuple(records), excluded=False)


class Sanitizer:
    """Schema-driven result sanitizer shared by runner and pool.

    Thread-safe: sanitization itself is pure, and the ledger locks its
    own updates, so one sanitizer instance can serve a whole parallel
    sweep.
    """

    def __init__(self, schemas: dict, *,
                 ledger: TelemetryLedger | None = None):
        self.schemas = dict(schemas)
        self.ledger = ledger if ledger is not None else TelemetryLedger()

    @classmethod
    def for_suite(cls, suite, *, runner=None, span_factor: float = 100.0,
                  min_window_fraction: float = 0.25,
                  ledger: TelemetryLedger | None = None,
                  skus=None) -> "Sanitizer":
        """Sanitizer with default schemas derived from the suite.

        ``skus`` adds per-hardware-class schemas centred on each
        class's scaled healthy level (see
        :func:`~repro.quality.schema.schemas_for_suite`).
        """
        return cls(schemas_for_suite(suite, span_factor=span_factor,
                                     min_window_fraction=min_window_fraction,
                                     runner=runner, skus=skus),
                   ledger=ledger)

    def schema_for(self, benchmark: str, metric: str,
                   sku: str = "unknown") -> MetricSchema | None:
        """The governing schema: the window's SKU-specific schema when
        one is registered, else the class-agnostic fallback."""
        schema = self.schemas.get((sku, benchmark, metric))
        if schema is not None:
            return schema
        return self.schemas.get((benchmark, metric))

    def sanitize_result(self, spec, result: BenchmarkResult) -> BenchmarkResult:
        """Clean every metric window of one benchmark result.

        Idempotent: windows already carrying ``sanitized=True``
        provenance crossed this layer before (e.g. inside the runner)
        and pass through untouched -- no re-check, no double-counted
        ledger entries, no second quarantine verdict.  Metrics without
        a schema also pass untouched (and unmarked: nothing was
        checked, so nothing may claim to have been).  Quarantined
        (no-verdict) windows keep their raw series for forensics.
        """
        windows = []
        for metric_window in result.windows:
            schema = self.schema_for(result.benchmark, metric_window.metric,
                                     metric_window.sku)
            if metric_window.sanitized or schema is None:
                windows.append(metric_window)
                continue
            outcome = sanitize_window(metric_window.values, schema,
                                      node_id=result.node_id,
                                      benchmark=result.benchmark,
                                      metric=metric_window.metric)
            for rec in outcome.records:
                self.ledger.record(rec)
            faults = tuple(rec.fault for rec in outcome.records)
            if outcome.excluded:
                windows.append(metric_window.mark_sanitized(
                    quarantined=True, faults=faults))
            else:
                windows.append(metric_window.mark_sanitized(
                    values=outcome.values, faults=faults))
        return result.with_windows(tuple(windows))
