"""Figure 6: generic outlier detection misbehaves on benchmark metrics.

The paper's motivation for Algorithm 2: on benchmark-metric data with
a dense healthy cluster, a sparse-but-expected group and genuine
defects, LOF flags the low-density healthy points and the One-Class
SVM draws false boundaries inside dense intervals, while the CDF
criteria separates exactly the planted defects.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analysis.outliers import OneClassSvm, lof_outliers
from repro.core.criteria import learn_criteria


@pytest.fixture(scope="module")
def metric_population():
    """Benchmark metric values: dense healthy cluster + sparse healthy
    stragglers (within spec) + two genuine defects far below."""
    rng = np.random.default_rng(66)
    dense = rng.normal(100.0, 0.25, 70)
    sparse = rng.normal(99.0, 1.2, 10)  # expected performance, low density
    defects = np.array([80.0, 78.5])
    values = np.concatenate([dense, sparse, defects])
    truth = set(range(80, 82))
    sparse_indices = set(range(70, 80))
    return values, truth, sparse_indices


def test_fig6_outlier_baselines(metric_population, benchmark):
    values, truth, sparse_indices = metric_population

    def run_all():
        lof = set(lof_outliers(values, k=10, threshold=1.5).tolist())
        svm = set(OneClassSvm(nu=0.1, n_iterations=300).fit(values)
                  .outliers(values).tolist())
        ours = learn_criteria([[v] for v in values], alpha=0.95)
        return lof, svm, set(ours.defect_indices)

    lof, svm, ours = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def describe(flagged):
        tp = len(flagged & truth)
        fp = len(flagged - truth)
        return f"{tp}/2", fp

    rows = []
    for name, flagged in (("LOF", lof), ("One-Class SVM", svm),
                          ("CDF criteria (Alg. 2)", ours)):
        tp, fp = describe(flagged)
        rows.append((name, tp, fp))
    print_table("Figure 6: outlier methods on one benchmark metric "
                f"({values.size} nodes, 2 true defects)",
                ["method", "defects found", "false positives"], rows)

    # Shape: all methods find the true defects, but only the CDF
    # criteria does it with zero false positives; the baselines flag
    # expected-but-sparse points (the paper's complaint).
    assert truth <= ours and len(ours - truth) == 0
    assert truth <= lof
    assert len(lof - truth) > 0 and (lof & sparse_indices)
    assert len(svm - truth) > 0
    benchmark.extra_info["lof_false_positives"] = len(lof - truth)
    benchmark.extra_info["svm_false_positives"] = len(svm - truth)
