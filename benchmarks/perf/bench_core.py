"""Tracked perf-bench harness for the vectorized ECDF distance kernels.

Measures the scalar reference implementations against the batched
``repro.core.fastdist`` kernels across fleet sizes and writes the results
to ``BENCH_core.json``.  Three workloads are timed per fleet size:

* ``pairwise``    -- full N x N similarity matrix (Eq. 2 of the paper),
* ``one_vs_many`` -- online-filter scoring of N windows against a single
  learned reference sample (Eq. 3/4),
* ``learn``       -- end-to-end ``learn_criteria`` on the fleet.

A separate *learn-scaling* sweep (``--learn-sizes``) compares the exact
``learn_criteria`` against the incremental engine
(``repro.core.incremental``) on fleets with planted defects: the full
sketch+coreset learn, a delta re-learn after perturbing a few percent
of the fleet, and -- up to ``--learn-exact-max`` nodes -- the exact
learn itself.  Whenever the exact path runs, the sweep *asserts* that
both engines produce the identical defect set and that the maximum
similarity deviation stays inside the sketch ``distance_bound``; a
violation fails the run.

Before timing anything the harness runs a randomized equivalence sweep:
every vectorized path (compiled C merge kernel, NumPy Abel-summation
kernel, general ragged kernel, one-vs-many in both directions) is checked
against the scalar reference and the run aborts with a non-zero exit code
if any deviation exceeds ``--tolerance`` (default 1e-9).

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_core.py --out BENCH_core.json

CI runs the small smoke configuration::

    PYTHONPATH=src python benchmarks/perf/bench_core.py \
        --sizes 64 --repeats 1 --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core import _cmerge, fastdist  # noqa: E402
from repro.core.backend import pairwise_similarity_matrix  # noqa: E402
from repro.core.criteria import learn_criteria  # noqa: E402
from repro.core.distance import (  # noqa: E402
    one_sided_similarity,
    pairwise_similarity_matrix_reference,
    similarity,
)
from repro.core.fastdist import (  # noqa: E402
    SortedSampleBatch,
    batch_gap_integrals,
    one_vs_many_similarities,
    pairwise_similarities,
)
from repro.core.incremental import (  # noqa: E402
    IncrementalConfig,
    learn_criteria_incremental,
)
from repro.core.sketch import distance_bound  # noqa: E402


def make_fleet(rng: np.random.Generator, nodes: int, window: int) -> np.ndarray:
    """Synthetic fleet: healthy cluster with mild per-node offsets."""

    offsets = rng.normal(0.0, 0.5, size=(nodes, 1))
    return 100.0 + offsets + rng.normal(0.0, 2.0, size=(nodes, window))


def best_of(fn, repeats: int) -> float:
    fn()  # warmup
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# Equivalence sweep
# ---------------------------------------------------------------------------


def _uniform_numpy_matrix(samples) -> np.ndarray:
    """Pairwise similarities forced through the NumPy Abel-table path."""

    batch = SortedSampleBatch.from_samples(samples)
    integrals = fastdist._pairwise_integrals_uniform(batch.data)
    out = fastdist._normalize(
        integrals,
        batch.mins[:, None], batch.maxs[:, None],
        batch.mins[None, :], batch.maxs[None, :],
    )
    np.fill_diagonal(out, 0.0)
    return 1.0 - out


def _uniform_c_matrix(samples) -> np.ndarray | None:
    """Pairwise similarities forced through the compiled merge kernel."""

    batch = SortedSampleBatch.from_samples(samples)
    integrals = fastdist._pairwise_integrals_uniform_c(batch.data)
    if integrals is None:
        return None
    out = fastdist._normalize(
        integrals,
        batch.mins[:, None], batch.maxs[:, None],
        batch.mins[None, :], batch.maxs[None, :],
    )
    np.fill_diagonal(out, 0.0)
    return 1.0 - out


def _equivalence_cases(rng: np.random.Generator):
    yield "normal", [rng.normal(100, 2, size=40) for _ in range(6)]
    yield "duplicate_heavy", [
        np.round(rng.normal(50, 1, size=30), 0) for _ in range(5)
    ]
    yield "negative", [rng.normal(-10, 3, size=25) for _ in range(5)]
    yield "all_identical", [np.full(12, 7.5) for _ in range(4)]
    yield "single_value", [np.array([float(v)]) for v in rng.normal(5, 1, 4)]
    yield "ragged", [
        rng.normal(20, 2, size=int(n)) for n in rng.integers(1, 40, size=6)
    ]


def run_equivalence(tolerance: float) -> dict:
    rng = np.random.default_rng(7)
    worst = 0.0
    cases = {}
    for name, samples in _equivalence_cases(rng):
        reference = pairwise_similarity_matrix_reference(samples)
        deviations = {
            "dispatch": float(
                np.max(np.abs(pairwise_similarity_matrix(samples) - reference))
            )
        }
        sizes = {len(np.asarray(s)) for s in samples}
        if len(sizes) == 1:
            deviations["numpy_abel"] = float(
                np.max(np.abs(_uniform_numpy_matrix(samples) - reference))
            )
            c_matrix = _uniform_c_matrix(samples)
            if c_matrix is not None:
                deviations["c_kernel"] = float(
                    np.max(np.abs(c_matrix - reference))
                )

        # One-vs-many (both orientations) against the first sample.
        batch = SortedSampleBatch.from_samples(samples)
        ref_sample = np.sort(np.asarray(samples[0], dtype=float))
        for label, direction in (
            ("two_sided", 0), ("higher_better", 1), ("lower_better", -1),
        ):
            got = one_vs_many_similarities(
                batch, ref_sample, signed_direction=direction,
                assume_sorted=True,
            )
            if direction == 0:
                want = np.array(
                    [similarity(s, ref_sample) for s in samples]
                )
            else:
                want = np.array([
                    one_sided_similarity(
                        s, ref_sample, higher_is_better=direction > 0
                    )
                    for s in samples
                ])
            deviations[f"one_vs_many_{label}"] = float(
                np.max(np.abs(got - want))
            )

        # Row-wise batch kernel on adjacent pairs.
        if batch.n >= 2:
            left = batch.take(np.arange(batch.n - 1))
            right = batch.take(np.arange(1, batch.n))
            got = 1.0 - batch_gap_integrals(left, right)
            want = np.array([
                similarity(samples[i], samples[i + 1])
                for i in range(batch.n - 1)
            ])
            deviations["batch_rowwise"] = float(np.max(np.abs(got - want)))

        cases[name] = deviations
        worst = max(worst, *deviations.values())
    return {"max_deviation": worst, "tolerance": tolerance, "cases": cases}


# ---------------------------------------------------------------------------
# Timings
# ---------------------------------------------------------------------------


def bench_size(
    nodes: int, window: int, repeats: int, scalar_max: int
) -> dict:
    rng = np.random.default_rng(nodes)
    fleet = make_fleet(rng, nodes, window)
    samples = [fleet[i] for i in range(nodes)]
    batch = SortedSampleBatch.from_samples(samples)
    reference = np.sort(fleet[0])

    entry: dict = {"nodes": nodes, "window": window}

    vec_pairwise = best_of(
        lambda: pairwise_similarities(batch), repeats
    )
    vec_one = best_of(
        lambda: one_vs_many_similarities(
            batch, reference, signed_direction=1, assume_sorted=True
        ),
        repeats,
    )
    learn = best_of(
        lambda: learn_criteria(samples, 0.95, centroid="hybrid"), repeats
    )
    entry["pairwise"] = {"vectorized_s": vec_pairwise}
    entry["one_vs_many"] = {"vectorized_s": vec_one}
    entry["learn_criteria"] = {"vectorized_s": learn}

    if nodes <= scalar_max:
        scalar_pairwise = best_of(
            lambda: pairwise_similarity_matrix_reference(samples),
            max(1, repeats // 2),
        )
        scalar_one = best_of(
            lambda: [
                one_sided_similarity(s, reference, higher_is_better=True)
                for s in samples
            ],
            max(1, repeats // 2),
        )
        entry["pairwise"]["scalar_s"] = scalar_pairwise
        entry["pairwise"]["speedup"] = scalar_pairwise / vec_pairwise
        entry["one_vs_many"]["scalar_s"] = scalar_one
        entry["one_vs_many"]["speedup"] = scalar_one / vec_one
    return entry


def make_defective_fleet(
    rng: np.random.Generator, nodes: int, window: int
) -> np.ndarray:
    """Healthy fleet with ~1% planted defective nodes (shifted -20)."""

    fleet = make_fleet(rng, nodes, window)
    stride = max(nodes // max(nodes // 100, 1), 1)
    fleet[::stride] -= 20.0
    return fleet


def _perturb(fleet: np.ndarray, rng: np.random.Generator,
             fraction: float = 0.02) -> list[np.ndarray]:
    """Redraw a small fraction of windows (the delta re-learn input)."""

    out = fleet.copy()
    d = max(int(fleet.shape[0] * fraction), 1)
    rows = rng.choice(fleet.shape[0], size=d, replace=False)
    out[rows] = 100.0 + rng.normal(0.0, 0.5, size=(d, 1)) + rng.normal(
        0.0, 2.0, size=(d, fleet.shape[1]))
    return [out[i] for i in range(out.shape[0])]


def bench_learn_scaling(
    nodes: int, window: int, repeats: int, exact_max: int
) -> dict:
    """Exact vs incremental learn on one fleet size, with deviation gate."""

    rng = np.random.default_rng(nodes + 1)
    fleet = make_defective_fleet(rng, nodes, window)
    samples = [fleet[i] for i in range(nodes)]
    # exact_below=32 keeps even the CI smoke size on the sketch path,
    # so the approximation is what gets timed and gated everywhere.
    config = IncrementalConfig(exact_below=32)
    bound = distance_bound(config.sketch_size)

    entry: dict = {"nodes": nodes, "window": window}

    full_s = best_of(
        lambda: learn_criteria_incremental(
            samples, 0.95, centroid="hybrid", config=config), repeats)
    result, state = learn_criteria_incremental(
        samples, 0.95, centroid="hybrid", config=config)

    # Delta re-learns need fresh perturbations per repetition, or the
    # fingerprint short-circuit would time the cached path instead.
    delta_s = float("inf")
    delta_path = None
    for rep in range(max(repeats, 1) + 1):  # +1 warmup
        perturbed = _perturb(fleet, np.random.default_rng(1000 + rep))
        start = time.perf_counter()
        _, delta_state = learn_criteria_incremental(
            perturbed, 0.95, centroid="hybrid", config=config, state=state)
        elapsed = time.perf_counter() - start
        if rep:  # skip warmup timing
            delta_s = min(delta_s, elapsed)
        delta_path = delta_state.path
    entry["incremental"] = {
        "full_s": full_s,
        "delta_s": delta_s,
        "delta_path": delta_path,
        "sketch_size": config.sketch_size,
    }

    if nodes <= exact_max:
        exact_s = best_of(
            lambda: learn_criteria(samples, 0.95, centroid="hybrid"),
            max(1, repeats // 2))
        exact = learn_criteria(samples, 0.95, centroid="hybrid")
        exact_sims = np.asarray(exact.similarities)
        sim_dev = float(np.max(np.abs(
            np.asarray(result.similarities) - exact_sims)))
        criteria_dev = 1.0 - similarity(
            np.sort(np.asarray(result.criteria)),
            np.sort(np.asarray(exact.criteria)))
        # The engine's contract: verdicts agree wherever the exact
        # similarity is more than the sketch bound away from alpha;
        # windows *inside* the band are legitimately ambiguous (both
        # engines adjudicate them within measurement error of the
        # threshold), so they are counted, not gated.
        decisive = np.abs(exact_sims - 0.95) > bound
        inc_defects = set(result.defect_indices)
        exact_defects = set(exact.defect_indices)
        disagreements = inc_defects ^ exact_defects
        decisive_disagreements = sorted(
            i for i in disagreements if decisive[i])
        entry["exact"] = {"exact_s": exact_s, "speedup": exact_s / full_s}
        entry["deviation"] = {
            "max_similarity_deviation": sim_dev,
            "criteria_deviation": float(criteria_dev),
            "bound": bound,
            "borderline_disagreements": len(disagreements),
        }
        if decisive_disagreements:
            raise AssertionError(
                f"learn-scaling verdict mismatch at {nodes} nodes on "
                f"decisively-classified windows {decisive_disagreements} "
                f"(incremental={sorted(inc_defects)} "
                f"exact={sorted(exact_defects)})")
        if not disagreements and (sim_dev > bound or criteria_dev > bound):
            raise AssertionError(
                f"learn-scaling deviation {max(sim_dev, criteria_dev):.4f} "
                f"exceeds the sketch bound {bound:.4f} at {nodes} nodes")
    return entry


#: The mixed-fleet composition and per-class performance factors used
#: by the mixed-SKU leg (mirrors ``repro.hardware.sku.SKU_REGISTRY``).
_SKU_MIX = (("A100", 0.5, 1.0), ("H100", 0.3, 2.2), ("MI250X", 0.2, 1.4))


def make_mixed_fleet(
    rng: np.random.Generator, nodes: int, window: int
) -> dict[str, np.ndarray]:
    """3-SKU fleet: per-class baselines with ~1% planted defects each."""

    groups: dict[str, np.ndarray] = {}
    remaining = nodes
    for index, (sku, fraction, factor) in enumerate(_SKU_MIX):
        count = (remaining if index == len(_SKU_MIX) - 1
                 else max(int(round(nodes * fraction)), 1))
        remaining -= count
        offsets = rng.normal(0.0, 0.5 * factor, size=(count, 1))
        fleet = (100.0 * factor + offsets
                 + rng.normal(0.0, 2.0 * factor, size=(count, window)))
        stride = max(count // max(count // 100, 1), 1)
        fleet[::stride] -= 20.0 * factor
        groups[sku] = fleet
    return groups


def bench_mixed_sku(nodes: int, window: int, repeats: int) -> dict:
    """Per-SKU partitioned learn vs the legacy pooled learn.

    The partitioned path is what the (sku, benchmark, metric) keying
    runs in production: one Algorithm-2 learn per class namespace.
    The pooled path is the pre-SKU behavior kept as a baseline -- it
    merges the per-class distributions, so its timing shows what the
    partition costs (usually: nothing, the work is subdivided) and
    its defect count shows why pooling is wrong on a mixed fleet.
    """

    rng = np.random.default_rng(nodes + 2)
    groups = make_mixed_fleet(rng, nodes, window)
    per_sku_samples = {
        sku: [fleet[i] for i in range(fleet.shape[0])]
        for sku, fleet in groups.items()
    }
    pooled_samples = [s for samples in per_sku_samples.values()
                      for s in samples]

    def learn_per_sku():
        return {sku: learn_criteria(samples, 0.95, centroid="hybrid")
                for sku, samples in per_sku_samples.items()}

    per_sku_s = best_of(learn_per_sku, repeats)
    pooled_s = best_of(
        lambda: learn_criteria(pooled_samples, 0.95, centroid="hybrid"),
        repeats)

    results = learn_per_sku()
    pooled = learn_criteria(pooled_samples, 0.95, centroid="hybrid")
    per_sku_defects = sum(len(r.defect_indices) for r in results.values())
    entry = {
        "nodes": nodes,
        "window": window,
        "composition": {sku: fleet.shape[0]
                        for sku, fleet in groups.items()},
        "per_sku_learn_s": per_sku_s,
        "pooled_learn_s": pooled_s,
        # Informational (not gated): pooling a heterogeneous fleet
        # mis-classifies whole classes as defective; the partitioned
        # learn finds only the planted per-class defects.
        "per_sku_defects": per_sku_defects,
        "pooled_defects": len(pooled.defect_indices),
    }
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="64,256,1024",
                        help="comma-separated fleet sizes")
    parser.add_argument("--window", type=int, default=300,
                        help="samples per node window")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--scalar-max", type=int, default=1024,
                        help="largest fleet to also time with the scalar "
                             "reference implementation")
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="max allowed vectorized-vs-scalar deviation")
    parser.add_argument("--learn-sizes", default="1024,4096,10000",
                        help="comma-separated fleet sizes for the "
                             "learn-scaling sweep (empty string skips it)")
    parser.add_argument("--mixed-sku-sizes", default="1024",
                        help="comma-separated fleet sizes for the 3-SKU "
                             "mixed-fleet leg (empty string skips it)")
    parser.add_argument("--learn-exact-max", type=int, default=4096,
                        help="largest learn-scaling fleet to also run "
                             "through the exact O(n^2) learner (deviation "
                             "is gated wherever the exact path runs)")
    parser.add_argument("--out", default="BENCH_core.json",
                        help="output JSON path")
    parser.add_argument("--skip-equivalence", action="store_true",
                        help="skip the equivalence sweep (timings only)")
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    learn_sizes = [int(s) for s in args.learn_sizes.split(",") if s.strip()]
    mixed_sizes = [int(s) for s in args.mixed_sku_sizes.split(",")
                   if s.strip()]

    result: dict = {
        "suite": "repro.core distance kernels",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "c_kernel": _cmerge.available(),
        },
        "config": {
            "window": args.window,
            "repeats": args.repeats,
            "tolerance": args.tolerance,
        },
    }

    if not args.skip_equivalence:
        print("equivalence sweep ...", flush=True)
        equivalence = run_equivalence(args.tolerance)
        result["equivalence"] = equivalence
        print(f"  max deviation: {equivalence['max_deviation']:.3e}")
        if equivalence["max_deviation"] > args.tolerance:
            print(
                "FAIL: vectorized kernels deviate from the scalar reference "
                f"by {equivalence['max_deviation']:.3e} "
                f"(tolerance {args.tolerance:.1e})",
                file=sys.stderr,
            )
            Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
            return 1

    result["timings"] = []
    for nodes in sizes:
        print(f"benchmarking fleet size {nodes} ...", flush=True)
        entry = bench_size(nodes, args.window, args.repeats, args.scalar_max)
        result["timings"].append(entry)
        pairwise = entry["pairwise"]
        if "speedup" in pairwise:
            print(
                f"  pairwise {pairwise['scalar_s'] * 1e3:9.1f} ms -> "
                f"{pairwise['vectorized_s'] * 1e3:7.1f} ms  "
                f"({pairwise['speedup']:.1f}x)"
            )
        else:
            print(f"  pairwise {pairwise['vectorized_s'] * 1e3:7.1f} ms")

    if learn_sizes:
        # Keyed by fleet size (not a list) so the compare_bench gate
        # only ever diffs a size against the same size -- a CI smoke at
        # --learn-sizes 64 must not be judged against the committed
        # 1024-node entry.
        result["learn_scaling"] = {}
        for nodes in learn_sizes:
            print(f"learn-scaling fleet size {nodes} ...", flush=True)
            try:
                entry = bench_learn_scaling(nodes, args.window, args.repeats,
                                            args.learn_exact_max)
            except AssertionError as error:
                print(f"FAIL: {error}", file=sys.stderr)
                Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
                return 1
            result["learn_scaling"][str(nodes)] = entry
            inc = entry["incremental"]
            line = (f"  incremental full {inc['full_s'] * 1e3:8.1f} ms, "
                    f"delta {inc['delta_s'] * 1e3:8.1f} ms "
                    f"({inc['delta_path']})")
            if "exact" in entry:
                line += (f", exact {entry['exact']['exact_s'] * 1e3:9.1f} ms "
                         f"({entry['exact']['speedup']:.1f}x), max dev "
                         f"{entry['deviation']['max_similarity_deviation']:.4f}"
                         f" < {entry['deviation']['bound']:.4f}")
            print(line)

    if mixed_sizes:
        # Keyed by fleet size for the same reason as learn_scaling: the
        # compare_bench gate must never diff a CI smoke size against
        # the committed full-size entry.
        result["mixed_sku"] = {}
        for nodes in mixed_sizes:
            print(f"mixed-SKU fleet size {nodes} ...", flush=True)
            entry = bench_mixed_sku(nodes, args.window, args.repeats)
            result["mixed_sku"][str(nodes)] = entry
            print(f"  per-SKU learn {entry['per_sku_learn_s'] * 1e3:8.1f} ms"
                  f" ({entry['per_sku_defects']} defects), pooled "
                  f"{entry['pooled_learn_s'] * 1e3:8.1f} ms "
                  f"({entry['pooled_defects']} defects)")

    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
