"""Tracked perf-bench harness for the vectorized ECDF distance kernels.

Measures the scalar reference implementations against the batched
``repro.core.fastdist`` kernels across fleet sizes and writes the results
to ``BENCH_core.json``.  Three workloads are timed per fleet size:

* ``pairwise``    -- full N x N similarity matrix (Eq. 2 of the paper),
* ``one_vs_many`` -- online-filter scoring of N windows against a single
  learned reference sample (Eq. 3/4),
* ``learn``       -- end-to-end ``learn_criteria`` on the fleet.

Before timing anything the harness runs a randomized equivalence sweep:
every vectorized path (compiled C merge kernel, NumPy Abel-summation
kernel, general ragged kernel, one-vs-many in both directions) is checked
against the scalar reference and the run aborts with a non-zero exit code
if any deviation exceeds ``--tolerance`` (default 1e-9).

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_core.py --out BENCH_core.json

CI runs the small smoke configuration::

    PYTHONPATH=src python benchmarks/perf/bench_core.py \
        --sizes 64 --repeats 1 --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core import _cmerge, fastdist  # noqa: E402
from repro.core.backend import pairwise_similarity_matrix  # noqa: E402
from repro.core.criteria import learn_criteria  # noqa: E402
from repro.core.distance import (  # noqa: E402
    one_sided_similarity,
    pairwise_similarity_matrix_reference,
    similarity,
)
from repro.core.fastdist import (  # noqa: E402
    SortedSampleBatch,
    batch_gap_integrals,
    one_vs_many_similarities,
    pairwise_similarities,
)


def make_fleet(rng: np.random.Generator, nodes: int, window: int) -> np.ndarray:
    """Synthetic fleet: healthy cluster with mild per-node offsets."""

    offsets = rng.normal(0.0, 0.5, size=(nodes, 1))
    return 100.0 + offsets + rng.normal(0.0, 2.0, size=(nodes, window))


def best_of(fn, repeats: int) -> float:
    fn()  # warmup
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# Equivalence sweep
# ---------------------------------------------------------------------------


def _uniform_numpy_matrix(samples) -> np.ndarray:
    """Pairwise similarities forced through the NumPy Abel-table path."""

    batch = SortedSampleBatch.from_samples(samples)
    integrals = fastdist._pairwise_integrals_uniform(batch.data)
    out = fastdist._normalize(
        integrals,
        batch.mins[:, None], batch.maxs[:, None],
        batch.mins[None, :], batch.maxs[None, :],
    )
    np.fill_diagonal(out, 0.0)
    return 1.0 - out


def _uniform_c_matrix(samples) -> np.ndarray | None:
    """Pairwise similarities forced through the compiled merge kernel."""

    batch = SortedSampleBatch.from_samples(samples)
    integrals = fastdist._pairwise_integrals_uniform_c(batch.data)
    if integrals is None:
        return None
    out = fastdist._normalize(
        integrals,
        batch.mins[:, None], batch.maxs[:, None],
        batch.mins[None, :], batch.maxs[None, :],
    )
    np.fill_diagonal(out, 0.0)
    return 1.0 - out


def _equivalence_cases(rng: np.random.Generator):
    yield "normal", [rng.normal(100, 2, size=40) for _ in range(6)]
    yield "duplicate_heavy", [
        np.round(rng.normal(50, 1, size=30), 0) for _ in range(5)
    ]
    yield "negative", [rng.normal(-10, 3, size=25) for _ in range(5)]
    yield "all_identical", [np.full(12, 7.5) for _ in range(4)]
    yield "single_value", [np.array([float(v)]) for v in rng.normal(5, 1, 4)]
    yield "ragged", [
        rng.normal(20, 2, size=int(n)) for n in rng.integers(1, 40, size=6)
    ]


def run_equivalence(tolerance: float) -> dict:
    rng = np.random.default_rng(7)
    worst = 0.0
    cases = {}
    for name, samples in _equivalence_cases(rng):
        reference = pairwise_similarity_matrix_reference(samples)
        deviations = {
            "dispatch": float(
                np.max(np.abs(pairwise_similarity_matrix(samples) - reference))
            )
        }
        sizes = {len(np.asarray(s)) for s in samples}
        if len(sizes) == 1:
            deviations["numpy_abel"] = float(
                np.max(np.abs(_uniform_numpy_matrix(samples) - reference))
            )
            c_matrix = _uniform_c_matrix(samples)
            if c_matrix is not None:
                deviations["c_kernel"] = float(
                    np.max(np.abs(c_matrix - reference))
                )

        # One-vs-many (both orientations) against the first sample.
        batch = SortedSampleBatch.from_samples(samples)
        ref_sample = np.sort(np.asarray(samples[0], dtype=float))
        for label, direction in (
            ("two_sided", 0), ("higher_better", 1), ("lower_better", -1),
        ):
            got = one_vs_many_similarities(
                batch, ref_sample, signed_direction=direction,
                assume_sorted=True,
            )
            if direction == 0:
                want = np.array(
                    [similarity(s, ref_sample) for s in samples]
                )
            else:
                want = np.array([
                    one_sided_similarity(
                        s, ref_sample, higher_is_better=direction > 0
                    )
                    for s in samples
                ])
            deviations[f"one_vs_many_{label}"] = float(
                np.max(np.abs(got - want))
            )

        # Row-wise batch kernel on adjacent pairs.
        if batch.n >= 2:
            left = batch.take(np.arange(batch.n - 1))
            right = batch.take(np.arange(1, batch.n))
            got = 1.0 - batch_gap_integrals(left, right)
            want = np.array([
                similarity(samples[i], samples[i + 1])
                for i in range(batch.n - 1)
            ])
            deviations["batch_rowwise"] = float(np.max(np.abs(got - want)))

        cases[name] = deviations
        worst = max(worst, *deviations.values())
    return {"max_deviation": worst, "tolerance": tolerance, "cases": cases}


# ---------------------------------------------------------------------------
# Timings
# ---------------------------------------------------------------------------


def bench_size(
    nodes: int, window: int, repeats: int, scalar_max: int
) -> dict:
    rng = np.random.default_rng(nodes)
    fleet = make_fleet(rng, nodes, window)
    samples = [fleet[i] for i in range(nodes)]
    batch = SortedSampleBatch.from_samples(samples)
    reference = np.sort(fleet[0])

    entry: dict = {"nodes": nodes, "window": window}

    vec_pairwise = best_of(
        lambda: pairwise_similarities(batch), repeats
    )
    vec_one = best_of(
        lambda: one_vs_many_similarities(
            batch, reference, signed_direction=1, assume_sorted=True
        ),
        repeats,
    )
    learn = best_of(
        lambda: learn_criteria(samples, 0.95, centroid="hybrid"), repeats
    )
    entry["pairwise"] = {"vectorized_s": vec_pairwise}
    entry["one_vs_many"] = {"vectorized_s": vec_one}
    entry["learn_criteria"] = {"vectorized_s": learn}

    if nodes <= scalar_max:
        scalar_pairwise = best_of(
            lambda: pairwise_similarity_matrix_reference(samples),
            max(1, repeats // 2),
        )
        scalar_one = best_of(
            lambda: [
                one_sided_similarity(s, reference, higher_is_better=True)
                for s in samples
            ],
            max(1, repeats // 2),
        )
        entry["pairwise"]["scalar_s"] = scalar_pairwise
        entry["pairwise"]["speedup"] = scalar_pairwise / vec_pairwise
        entry["one_vs_many"]["scalar_s"] = scalar_one
        entry["one_vs_many"]["speedup"] = scalar_one / vec_one
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="64,256,1024",
                        help="comma-separated fleet sizes")
    parser.add_argument("--window", type=int, default=300,
                        help="samples per node window")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--scalar-max", type=int, default=1024,
                        help="largest fleet to also time with the scalar "
                             "reference implementation")
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="max allowed vectorized-vs-scalar deviation")
    parser.add_argument("--out", default="BENCH_core.json",
                        help="output JSON path")
    parser.add_argument("--skip-equivalence", action="store_true",
                        help="skip the equivalence sweep (timings only)")
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]

    result: dict = {
        "suite": "repro.core distance kernels",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "c_kernel": _cmerge.available(),
        },
        "config": {
            "window": args.window,
            "repeats": args.repeats,
            "tolerance": args.tolerance,
        },
    }

    if not args.skip_equivalence:
        print("equivalence sweep ...", flush=True)
        equivalence = run_equivalence(args.tolerance)
        result["equivalence"] = equivalence
        print(f"  max deviation: {equivalence['max_deviation']:.3e}")
        if equivalence["max_deviation"] > args.tolerance:
            print(
                "FAIL: vectorized kernels deviate from the scalar reference "
                f"by {equivalence['max_deviation']:.3e} "
                f"(tolerance {args.tolerance:.1e})",
                file=sys.stderr,
            )
            Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
            return 1

    result["timings"] = []
    for nodes in sizes:
        print(f"benchmarking fleet size {nodes} ...", flush=True)
        entry = bench_size(nodes, args.window, args.repeats, args.scalar_max)
        result["timings"].append(entry)
        pairwise = entry["pairwise"]
        if "speedup" in pairwise:
            print(
                f"  pairwise {pairwise['scalar_s'] * 1e3:9.1f} ms -> "
                f"{pairwise['vectorized_s'] * 1e3:7.1f} ms  "
                f"({pairwise['speedup']:.1f}x)"
            )
        else:
            print(f"  pairwise {pairwise['vectorized_s'] * 1e3:7.1f} ms")

    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
