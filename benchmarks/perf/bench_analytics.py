"""Tracked perf-bench harness for the analytics read path.

The write path has a measured ceiling (``bench_core.py``); this gives
the read path one too.  For each journal size the harness synthesizes a
deterministic service-shaped journal (enqueue/transition/complete
cycles with provenance, rollbacks, dead letters and breaker records),
then measures:

* ``replay``  -- ``JournalReader.read_all`` throughput in records/sec
  (decode + CRC verification included),
* ``report``  -- ``build_report`` latency over the already-read
  records (pure reducer cost),
* ``end_to_end`` -- journal file to rendered JSON report.

Before timing anything the harness verifies the determinism contract:
two replay+build passes over the same journal must render
byte-identical JSON and markdown, or the run aborts non-zero.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_analytics.py \
        --out BENCH_analytics.json

CI runs the small smoke configuration::

    PYTHONPATH=src python benchmarks/perf/bench_analytics.py \
        --sizes 1000 --repeats 1 --out BENCH_analytics.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.analytics import JournalReader, build_report  # noqa: E402
from repro.analytics.report import render_json, render_markdown  # noqa: E402
from repro.service.store import JournalStore, RecordKind  # noqa: E402


def synthesize_journal(directory: Path, records: int, *,
                       nodes: int = 64, seed: int = 11) -> int:
    """Write a service-shaped journal of roughly ``records`` records.

    The mix mirrors what a chaos soak produces: mostly event
    lifecycles and transitions, a sprinkling of provenance, breaker,
    rollback, dead-letter and snapshot records.  Seeded, so every
    harness run benchmarks the same byte stream.
    """
    rng = np.random.default_rng(seed)
    store = JournalStore(directory)
    written = 0
    event_id = 0
    while written < records:
        event_id += 1
        node_ids = [f"node-{int(i):04d}"
                    for i in rng.choice(nodes, size=3, replace=False)]
        store.append(RecordKind.EVENT_ENQUEUED, {
            "event_id": event_id,
            "priority": float(rng.random()),
            "event": {"kind": "job-allocation", "duration_hours": 24.0},
        })
        for node_id in node_ids:
            store.append(RecordKind.TRANSITION, {
                "node_id": node_id, "old": "healthy", "new": "scheduled",
                "reason": f"event-{event_id}"})
        defective = [node_ids[0]] if rng.random() < 0.10 else []
        for node_id in node_ids:
            new = "quarantined" if node_id in defective else "healthy"
            store.append(RecordKind.TRANSITION, {
                "node_id": node_id, "old": "validating", "new": new,
                "reason": f"event-{event_id}"})
        store.append(RecordKind.BATCH_PROVENANCE, {
            "event_id": event_id,
            "provenance": [
                {"benchmark": "gemm", "metric": "gflops",
                 "windows": len(node_ids), "sanitized": len(node_ids),
                 "quarantined": len(defective),
                 "faults": {"non-finite": 1} if defective else {}},
            ],
        })
        store.append(RecordKind.EVENT_COMPLETED, {
            "event_id": event_id,
            "kind": "job-allocation",
            "skipped": False,
            "validated_nodes": node_ids,
            "benchmarks_run": ["gemm"],
            "violations": [],
            "defective": defective,
            "short_circuited": [],
            "queue_latency_seconds": float(rng.random()),
            "validation_seconds": float(rng.random() * 3.0),
            "duration_hours": 24.0,
        })
        written += 6 + len(node_ids)
        if event_id % 40 == 0:
            store.append(RecordKind.CRITERIA_ROLLBACK, {
                "benchmark": "gemm", "metric": "gflops",
                "candidate_rate": 0.4, "baseline_rate": 0.05,
                "reason": "eviction budget exceeded"})
            written += 1
        if event_id % 55 == 0:
            store.append(RecordKind.EVENT_DEAD_LETTERED, {
                "event_id": event_id, "reason": "poison"})
            written += 1
        if event_id % 30 == 0:
            store.append(RecordKind.BREAKER_TRANSITION, {
                "benchmark": "nccl", "old": "closed", "new": "open",
                "reason": "fleet-wide failure"})
            written += 1
        if event_id % 100 == 0:
            store.append(RecordKind.PIPELINE_STATS, {"stages": {
                "execute": {"count": event_id * 3,
                            "seconds": event_id * 0.01}}})
            written += 1
    return written


def best_of(fn, repeats: int) -> float:
    fn()  # warmup
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_determinism(directory: Path) -> bool:
    """Two full replay+build passes must render byte-identically."""
    first = build_report(JournalReader(directory).read_all())
    second = build_report(JournalReader(directory).read_all())
    return (render_json(first) == render_json(second)
            and render_markdown(first) == render_markdown(second))


def bench_size(directory: Path, records: int, repeats: int) -> dict:
    synthesize_journal(directory, records)
    reader = JournalReader(directory)
    loaded = reader.read_all()
    actual = len(loaded)

    replay_s = best_of(lambda: JournalReader(directory).read_all(), repeats)
    report_s = best_of(lambda: build_report(loaded), repeats)
    end_to_end_s = best_of(
        lambda: render_json(build_report(JournalReader(directory).read_all())),
        repeats)
    return {
        "records": actual,
        "journal_bytes": (directory / "journal.jsonl").stat().st_size,
        "replay": {
            "seconds": replay_s,
            "records_per_s": actual / replay_s if replay_s > 0 else None,
        },
        "report": {"latency_s": report_s},
        "end_to_end": {"latency_s": end_to_end_s},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="1000,5000,20000",
                        help="comma-separated journal sizes (records)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--out", default="BENCH_analytics.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]

    result: dict = {
        "suite": "repro.analytics journal read path",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {"repeats": args.repeats},
        "timings": [],
    }

    with tempfile.TemporaryDirectory() as tmp:
        probe = Path(tmp) / "determinism"
        synthesize_journal(probe, min(sizes))
        print("determinism check ...", flush=True)
        if not check_determinism(probe):
            print("FAIL: two replays of the same journal rendered "
                  "different reports", file=sys.stderr)
            Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
            return 1
        print("  byte-identical across replays")

        for size in sizes:
            print(f"benchmarking journal size {size} ...", flush=True)
            entry = bench_size(Path(tmp) / f"journal-{size}", size,
                               args.repeats)
            result["timings"].append(entry)
            print(f"  replay {entry['replay']['records_per_s']:10.0f} rec/s  "
                  f"report {entry['report']['latency_s'] * 1e3:7.1f} ms  "
                  f"end-to-end {entry['end_to_end']['latency_s'] * 1e3:7.1f} ms")

    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
