"""Tracked perf-bench harness for the supervised shard fabric.

The single-service write path (``bench_core.py``) and the analytics
read path (``bench_analytics.py``) have measured ceilings; this gives
the *control plane itself* one.  A seeded synthetic load generator
submits risk-weighted validation events against a
:class:`~repro.service.supervisor.ShardSupervisor` over real journals,
then the harness measures:

* ``throughput``   -- events fully processed per second of supervised
  draining (submit -> tick loop -> quiescent),
* ``tick_latency`` -- p50/p99 of individual supervisor tick latency
  (the fabric's scheduling + heartbeat overhead per round),
* ``recovery``     -- time for a cold :class:`ShardSupervisor` to
  rebuild every shard from its journal, against the total journal
  size it replayed -- the robustness tax, measured.

A second leg (``fabric_processes``) measures the process-isolated
fabric on the same load shape: worker-process spawn cost, RPC-driven
drain throughput and tick latency, and the wall-clock cost of
recovering from a real ``SIGKILL`` against a live worker (detect,
respawn, re-reach quiescence) -- what OS-level containment costs over
threads.

Before timing, the harness asserts the accounting invariant the chaos
soak relies on: every submitted per-shard event is completed, shed,
dead-lettered or handed off -- no silent loss under load.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_service.py \
        --out BENCH_service.json

CI runs the small smoke configuration::

    PYTHONPATH=src python benchmarks/perf/bench_service.py \
        --events 30 --nodes 12 --shards 3 --out /tmp/BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.benchsuite.runner import SuiteRunner  # noqa: E402
from repro.benchsuite.suite import suite_by_name  # noqa: E402
from repro.core.selector import NodeStatus, Selector  # noqa: E402
from repro.core.system import Anubis, EventKind, ValidationEvent  # noqa: E402
from repro.core.validator import Validator  # noqa: E402
from repro.hardware.fleet import build_fleet  # noqa: E402
from repro.service import (  # noqa: E402
    PoolConfig,
    ServiceConfig,
    ShardSupervisor,
    SupervisorConfig,
)
from repro.simulation import analytic_coverage_table, suite_durations  # noqa: E402
from repro.simulation.generator import generate_incident_trace  # noqa: E402
from repro.survival import extract_status_samples  # noqa: E402
from repro.survival.exponential import ExponentialModel  # noqa: E402

SUITE = (suite_by_name("ib-loopback"), suite_by_name("mem-bw"))
FAST_POOL = PoolConfig(max_workers=4, benchmark_timeout_seconds=2.0,
                       max_attempts=1, backoff_base_seconds=0.0,
                       poll_interval_seconds=0.005)
#: Event kinds the generator cycles through (weighted toward the
#: selector-gated kinds so ticks exercise the policy path too).
_KINDS = (EventKind.JOB_ALLOCATION, EventKind.JOB_ALLOCATION,
          EventKind.INCIDENT_REPORTED, EventKind.NODE_ADDED,
          EventKind.SOFTWARE_UPGRADED)


def build_supervisor(journal_root, *, nodes: int, shards: int,
                     max_queue_depth: int | None = None):
    """A full fabric over a simulated fleet, plus its event fixtures."""
    fleet = build_fleet(nodes, seed=5)
    trace = generate_incident_trace(50, 800.0, seed=11)
    dataset = extract_status_samples(trace)
    model = ExponentialModel().fit(dataset)

    def anubis_factory():
        validator = Validator(SUITE, runner=SuiteRunner(seed=9))
        validator.learn_criteria(fleet.nodes[:min(6, nodes)])
        selector = Selector(model, analytic_coverage_table(SUITE),
                            suite_durations(SUITE), p0=0.05)
        return Anubis(validator, selector)

    config = SupervisorConfig(
        shard_count=shards,
        service=ServiceConfig(pool=FAST_POOL,
                              max_queue_depth=max_queue_depth))
    supervisor = ShardSupervisor(anubis_factory, fleet.nodes,
                                 journal_root=journal_root, config=config)
    return supervisor, fleet, dataset


def generate_load(supervisor, fleet, dataset, *, events: int,
                  seed: int = 23) -> int:
    """Submit ``events`` seeded synthetic events; return parts accepted.

    Each event touches 2-4 random nodes (so most events split across
    shard boundaries) with trace-derived covariates -- the same shape
    the chaos soak and the CLI ``serve`` driver produce.
    """
    rng = np.random.default_rng(seed)
    accepted = 0
    for sequence in range(events):
        count = int(rng.integers(2, 5))
        indices = rng.choice(len(fleet.nodes), size=count, replace=False)
        nodes = tuple(fleet.nodes[int(i)] for i in indices)
        statuses = tuple(
            NodeStatus(node_id=node.node_id,
                       covariates=dataset.covariates[int(i) % len(dataset)])
            for i, node in zip(indices, nodes))
        event = ValidationEvent(kind=_KINDS[sequence % len(_KINDS)],
                                nodes=nodes, statuses=statuses,
                                duration_hours=24.0)
        accepted += len(supervisor.submit(event))
    return accepted


def check_accounting(supervisor, accepted: int) -> tuple[bool, dict]:
    """Every accepted per-shard event must be accounted for."""
    completed = shed = dead = handed = 0
    for shard in supervisor.shards:
        metrics = shard.service.metrics
        completed += metrics.events_processed
        shed += metrics.events_shed
        dead += metrics.events_dead_lettered
        handed += len(shard.service.handed_off)
    # Coalescing merges submissions, so completed covers >= 1 accepted
    # entry each; the invariant is no *loss*, not 1:1.
    counts = {"accepted": accepted, "completed": completed, "shed": shed,
              "dead_lettered": dead, "handed_off": handed}
    remaining = sum(len(s.service.queue) for s in supervisor.shards)
    return remaining == 0 and completed + shed + dead + handed > 0, counts


def percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def journal_bytes(journal_root: Path) -> int:
    return sum(path.stat().st_size
               for path in Path(journal_root).glob("shard-*/journal.jsonl"))


def bench_fabric(journal_root: Path, *, events: int, nodes: int,
                 shards: int) -> dict:
    supervisor, fleet, dataset = build_supervisor(
        journal_root, nodes=nodes, shards=shards)
    accepted = generate_load(supervisor, fleet, dataset, events=events)

    tick_latencies: list[float] = []
    drain_start = time.perf_counter()
    while not supervisor.quiescent():
        tick_start = time.perf_counter()
        supervisor.tick()
        tick_latencies.append(time.perf_counter() - tick_start)
    drain_s = time.perf_counter() - drain_start

    ok, counts = check_accounting(supervisor, accepted)
    if not ok:
        raise SystemExit(f"FAIL: event accounting does not balance: {counts}")

    bytes_replayed = journal_bytes(journal_root)
    recovery_start = time.perf_counter()
    recovered, _fleet, _dataset = build_supervisor(
        journal_root, nodes=nodes, shards=shards)
    recovery_s = time.perf_counter() - recovery_start
    if not recovered.quiescent():
        raise SystemExit("FAIL: recovered fabric is not quiescent")

    processed = counts["completed"]
    return {
        "events_submitted": events,
        "event_parts_accepted": accepted,
        "accounting": counts,
        "journal_bytes": bytes_replayed,
        "throughput": {
            "drain_seconds": drain_s,
            "events_per_s": processed / drain_s if drain_s > 0 else None,
        },
        "tick_latency": {
            "ticks": len(tick_latencies),
            "p50_s": percentile(tick_latencies, 50),
            "p99_s": percentile(tick_latencies, 99),
        },
        "recovery": {
            "seconds": recovery_s,
            "bytes_per_s": (bytes_replayed / recovery_s
                            if recovery_s > 0 else None),
        },
    }


def bench_process_fabric(workdir: Path, *, events: int, nodes: int,
                         shards: int) -> dict:
    """The process-isolated fabric leg: same load, real OS workers."""
    import signal as _signal

    from repro.core.persistence import save_criteria
    from repro.service import ProcessFabric
    from repro.service.procfabric import replay_queue_state
    from repro.service.shard import ShardState
    from repro.service.store import JournalStore

    fleet = build_fleet(nodes, seed=5)
    trace = generate_incident_trace(50, 800.0, seed=11)
    dataset = extract_status_samples(trace)
    # Learn once in the parent; workers load from disk (the production
    # shape -- per-worker re-learning would just benchmark learning).
    validator = Validator(SUITE, runner=SuiteRunner(seed=9))
    validator.learn_criteria(fleet.nodes[:min(6, nodes)])
    workdir.mkdir(parents=True, exist_ok=True)
    criteria_path = workdir / "criteria.json"
    save_criteria(validator, criteria_path)

    journal_root = workdir / "fabric"
    builder_args = {
        "fleet_size": nodes, "fleet_seed": 5,
        "suite": ["ib-loopback", "mem-bw"], "runner_seed": 9,
        "criteria_path": str(criteria_path),
        "trace_nodes": 50, "trace_hours": 800.0, "trace_seed": 11,
        "p0": 0.05,
        "pool": {"max_workers": 4, "benchmark_timeout_seconds": 2.0,
                 "max_attempts": 1, "backoff_base_seconds": 0.0,
                 "poll_interval_seconds": 0.005},
    }
    spawn_start = time.perf_counter()
    fabric = ProcessFabric(
        builder="repro.service.procfabric:default_builder",
        builder_args=builder_args, journal_root=journal_root,
        config=SupervisorConfig(shard_count=shards))
    spawn_s = time.perf_counter() - spawn_start
    try:
        accepted = generate_load(fabric, fleet, dataset, events=events)

        tick_latencies: list[float] = []
        drain_start = time.perf_counter()
        while not fabric.quiescent():
            tick_start = time.perf_counter()
            fabric.tick()
            tick_latencies.append(time.perf_counter() - tick_start)
        drain_s = time.perf_counter() - drain_start

        # Real-SIGKILL recovery: kill a live worker, measure detect ->
        # respawn -> back to a quiescent fabric.
        victim = fabric.workers[0]
        os.kill(victim.proc.pid, _signal.SIGKILL)
        restart_start = time.perf_counter()
        restart_ticks = 0
        while not (victim.state is ShardState.RUNNING and victim.alive()
                   and fabric.quiescent()):
            fabric.tick()
            restart_ticks += 1
            if restart_ticks > 10_000:
                raise SystemExit("FAIL: killed worker never recovered")
        restart_s = time.perf_counter() - restart_start
    finally:
        sealed = fabric.shutdown()
    if not all(sealed.values()):
        raise SystemExit(f"FAIL: unclean worker drains: {sealed}")

    processed = 0
    for index in range(shards):
        store = JournalStore(journal_root / f"shard-{index:02d}")
        state = replay_queue_state(store.replay())
        if state.pending:
            raise SystemExit(
                f"FAIL: shard {index} left events pending: "
                f"{sorted(state.pending)}")
        if not state.sealed:
            raise SystemExit(f"FAIL: shard {index} journal not sealed")
        processed += state.last_event_id - len(state.handed_off)

    return {
        "events_submitted": events,
        "event_parts_accepted": accepted,
        "journal_bytes": journal_bytes(journal_root),
        "spawn": {
            "workers": shards,
            "seconds": spawn_s,
            "seconds_per_worker": spawn_s / shards,
        },
        "throughput": {
            "drain_seconds": drain_s,
            "events_per_s": processed / drain_s if drain_s > 0 else None,
        },
        "tick_latency": {
            "ticks": len(tick_latencies),
            "p50_s": percentile(tick_latencies, 50),
            "p99_s": percentile(tick_latencies, 99),
        },
        "sigkill_restart": {
            "seconds": restart_s,
            "ticks": restart_ticks,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=80,
                        help="synthetic events to submit")
    parser.add_argument("--nodes", type=int, default=16,
                        help="simulated fleet size")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    if args.events < 1 or args.nodes < 1 or args.shards < 1:
        print("error: --events/--nodes/--shards must be positive",
              file=sys.stderr)
        return 2

    result: dict = {
        "suite": "repro.service supervised shard fabric",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {"events": args.events, "nodes": args.nodes,
                   "shards": args.shards},
    }
    with tempfile.TemporaryDirectory() as tmp:
        print(f"driving {args.events} events over {args.shards} shards "
              f"({args.nodes} nodes) ...", flush=True)
        entry = bench_fabric(Path(tmp) / "fabric", events=args.events,
                             nodes=args.nodes, shards=args.shards)
        result["fabric"] = entry
        print(f"  throughput {entry['throughput']['events_per_s']:8.1f} ev/s  "
              f"tick p50 {entry['tick_latency']['p50_s'] * 1e3:6.1f} ms  "
              f"p99 {entry['tick_latency']['p99_s'] * 1e3:6.1f} ms  "
              f"recovery {entry['recovery']['seconds'] * 1e3:7.1f} ms "
              f"({entry['journal_bytes']} B)")

        print(f"driving {args.events} events over {args.shards} worker "
              f"processes ...", flush=True)
        entry = bench_process_fabric(Path(tmp) / "processes",
                                     events=args.events, nodes=args.nodes,
                                     shards=args.shards)
        result["fabric_processes"] = entry
        print(f"  throughput {entry['throughput']['events_per_s']:8.1f} ev/s  "
              f"tick p50 {entry['tick_latency']['p50_s'] * 1e3:6.1f} ms  "
              f"p99 {entry['tick_latency']['p99_s'] * 1e3:6.1f} ms  "
              f"spawn {entry['spawn']['seconds_per_worker'] * 1e3:7.1f} "
              f"ms/worker  sigkill restart "
              f"{entry['sigkill_restart']['seconds'] * 1e3:7.1f} ms")

    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
