"""Tolerance-gated regression diff for tracked BENCH_*.json baselines.

CI regenerates a bench file on the runner and compares every numeric
leaf against the committed baseline::

    PYTHONPATH=src python benchmarks/perf/compare_bench.py \
        --baseline BENCH_core.json --current /tmp/BENCH_core.json \
        --tolerance 10.0

Only *performance* leaves are gated -- keys ending in ``_s``,
``latency_s``, ``seconds`` (lower is better) and ``_per_s`` /
``speedup`` (higher is better).  Everything else (record counts, sizes,
machine info) is informational.  A leaf fails when it is worse than
``tolerance`` times the baseline; the default gate is deliberately
loose because CI runners and dev machines differ widely -- it exists to
catch order-of-magnitude regressions (an accidentally quadratic reader,
a de-vectorized kernel), not single-digit-percent noise.  Leaves
present on only one side are reported but never fail the gate (bench
schemas are allowed to grow).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Key suffixes gated as lower-is-better (durations).
_LOWER_IS_BETTER = ("_s", "seconds")
#: Key suffixes gated as higher-is-better (rates, speedups).
_HIGHER_IS_BETTER = ("_per_s", "speedup")


def classify(key: str) -> str | None:
    """``"lower"`` / ``"higher"`` for gated perf leaves, else ``None``."""
    if key.endswith(_HIGHER_IS_BETTER):
        return "higher"
    if key.endswith(_LOWER_IS_BETTER):
        return "lower"
    return None


def numeric_leaves(node, prefix=""):
    """Yield ``(path, leaf_key, value)`` for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from numeric_leaves(value, f"{prefix}.{key}" if prefix
                                      else str(key))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from numeric_leaves(value, f"{prefix}[{index}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield prefix, prefix.rsplit(".", 1)[-1], float(node)


def compare(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Violation descriptions; empty means the gate passes."""
    base = dict((path, (key, value))
                for path, key, value in numeric_leaves(baseline))
    cur = dict((path, (key, value))
               for path, key, value in numeric_leaves(current))
    violations = []
    for path in sorted(base.keys() & cur.keys()):
        key, base_value = base[path]
        _key, cur_value = cur[path]
        direction = classify(key)
        if direction is None or base_value <= 0 or cur_value <= 0:
            continue
        if direction == "lower" and cur_value > base_value * tolerance:
            violations.append(
                f"{path}: {cur_value:.6g}s vs baseline {base_value:.6g}s "
                f"(> {tolerance:g}x slower)")
        elif direction == "higher" and cur_value < base_value / tolerance:
            violations.append(
                f"{path}: {cur_value:.6g} vs baseline {base_value:.6g} "
                f"(> {tolerance:g}x lower)")
    for path in sorted(base.keys() - cur.keys()):
        if classify(base[path][0]):
            print(f"note: baseline-only leaf {path} (not gated)")
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed worsening factor before failing "
                             "(default 10.0 -- cross-machine headroom)")
    args = parser.parse_args(argv)
    if args.tolerance <= 1.0:
        print("error: --tolerance must be > 1.0", file=sys.stderr)
        return 2

    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    violations = compare(baseline, current, args.tolerance)
    gated = sum(1 for _p, key, _v in numeric_leaves(baseline)
                if classify(key))
    if violations:
        print(f"PERF GATE FAILED ({len(violations)} of {gated} gated "
              f"leaves worse than {args.tolerance:g}x baseline):",
              file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(f"perf gate passed: {gated} gated leaves within "
          f"{args.tolerance:g}x of {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
