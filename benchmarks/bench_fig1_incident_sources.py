"""Figure 1: percentage of infrastructure incidents' sources.

The paper histograms one month of Azure tickets over the component
that caused them, finding more than eight distinct sources.  We
regenerate the histogram from a synthetic one-month incident trace.
"""

import pytest

from conftest import print_table
from repro.simulation.generator import generate_incident_trace
from repro.hardware.degradation import WearModel


@pytest.fixture(scope="module")
def month_trace():
    wear = WearModel(base_mtbi_hours=400.0)
    return generate_incident_trace(500, 720.0, wear=wear, seed=101)


def test_fig1_incident_sources(month_trace, benchmark):
    counts = benchmark.pedantic(month_trace.component_counts,
                                rounds=3, iterations=1)
    total = sum(counts.values())
    rows = [(component, f"{100 * count / total:.1f}%")
            for component, count in sorted(counts.items(),
                                           key=lambda kv: -kv[1])]
    print_table("Figure 1: incident sources (1-month synthetic tickets)",
                ["component", "share"], rows)

    # Shape: more than 8 distinct component sources (the paper's point),
    # with GPU-side sources prominent and no single source dominating.
    assert len(counts) > 8
    shares = {c: n / total for c, n in counts.items()}
    assert max(shares.values()) < 0.5
    gpu_like = sum(v for c, v in shares.items() if c.startswith(("gpu", "hbm")))
    assert gpu_like > 0.25
    benchmark.extra_info["n_sources"] = len(counts)
    benchmark.extra_info["n_incidents"] = total
