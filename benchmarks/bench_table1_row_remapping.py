"""Table 1: GPU memory row-remapping impact on end-to-end workloads.

The paper: 3.19% of nodes accumulate 1-10 remapped correctable errors
and 0.18% accumulate more than 10; the latter group regresses in
end-to-end workloads 83.3% of the time versus 5.6%.  We regenerate the
table from a large simulated fleet with burn-in HBM errors, sampling
end-to-end regressions from the Table 1 conditional model.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.hardware.fleet import build_fleet
from repro.hardware.gpu import REMAP_THRESHOLD, row_remap_regression_probability


@pytest.fixture(scope="module")
def fleet():
    # Defects off: isolate the row-remapping mechanism.
    return build_fleet(20_000, seed=31, defect_scale=0.0, hbm_error_rate=0.034)


def test_table1_row_remapping(fleet, benchmark):
    rng = np.random.default_rng(7)

    def tally():
        low, high = [], []
        for node in fleet.nodes:
            remapped = node.gpu_memory.total_remapped
            if remapped == 0:
                continue
            regressed = rng.random() < node.gpu_memory.regression_probability()
            (low if remapped <= REMAP_THRESHOLD else high).append(regressed)
        return low, high

    low, high = benchmark.pedantic(tally, rounds=1, iterations=1)

    n = len(fleet)
    low_node_ratio = len(low) / n
    high_node_ratio = len(high) / n
    low_regression = float(np.mean(low))
    high_regression = float(np.mean(high))

    print_table(
        "Table 1: row remapping impact on end-to-end workloads",
        ["correctable errors remapped", "1 ~ 10", "> 10"],
        [("row remapping node ratio",
          f"{100 * low_node_ratio:.2f}% (paper 3.19%)",
          f"{100 * high_node_ratio:.2f}% (paper 0.18%)"),
         ("regression ratio of remapping nodes",
          f"{100 * low_regression:.1f}% (paper 5.6%)",
          f"{100 * high_regression:.1f}% (paper 83.3%)")],
    )

    # Shape: small remap populations; >10 errors means ~15x higher
    # regression odds.
    assert 0.015 < low_node_ratio < 0.06
    assert 0.0005 < high_node_ratio < 0.006
    assert low_regression == pytest.approx(0.056, abs=0.03)
    assert high_regression == pytest.approx(0.833, abs=0.15)
    assert high_regression > 5.0 * low_regression
    # The underlying conditional model is exactly Table 1.
    assert row_remap_regression_probability(10) == 0.056
    assert row_remap_regression_probability(11) == 0.833
