"""Table 4: simulated validation time and MTBI per selection policy.

Paper values over 30 days: validation time 0 / 100.40 / 7.96 hours per
node and MTBI 11.59 / 236.26 / 262.05 hours for absence / full set /
ANUBIS Selector -- i.e. the Selector cuts 92.07% of the validation
cost while *increasing* MTBI 22.61x over no validation and 1.11x over
the full set (more up time outweighs its slightly higher incident
count).
"""

import numpy as np
import pytest

from conftest import print_table
from repro.simulation.cluster import SimulationConfig
from repro.simulation.generator import generate_allocation_trace
from repro.simulation.metrics import run_policy_comparison


@pytest.fixture(scope="module")
def comparisons():
    """Three seeds averaged, mirroring the stability of the paper's sim."""
    results = []
    for seed in (1, 2, 3):
        config = SimulationConfig(n_nodes=64, horizon_hours=720.0, seed=seed)
        trace = generate_allocation_trace(720.0, jobs_per_hour=24.0 / 18.0,
                                          max_job_nodes=16,
                                          mean_duration_hours=18.0,
                                          seed=100 + seed)
        results.append(run_policy_comparison(config, trace, p0=0.02))
    return results


def _mean(values):
    return float(np.mean(values))


def test_table4_selection_policies(comparisons, benchmark):
    benchmark.pedantic(lambda: comparisons[0].table4_rows(),
                       rounds=3, iterations=1)

    policies = ("absence", "full-set", "selector")
    validation = {p: _mean([c.results[p].average_validation_hours
                            for c in comparisons]) for p in policies}
    mtbi = {p: _mean([c.results[p].mtbi_hours for c in comparisons])
            for p in policies}
    incidents = {p: _mean([c.results[p].average_incidents
                           for c in comparisons]) for p in policies}

    paper_validation = {"absence": 0.0, "full-set": 100.40, "selector": 7.96}
    paper_mtbi = {"absence": 11.59, "full-set": 236.26, "selector": 262.05}
    rows = [(p,
             f"{validation[p]:.2f} (paper {paper_validation[p]:.2f})",
             f"{mtbi[p]:.2f} (paper {paper_mtbi[p]:.2f})",
             f"{incidents[p]:.2f}")
            for p in policies]
    print_table("Table 4: 30-day validation time and MTBI per node (h)",
                ["policy", "validation time", "MTBI", "incidents/node"], rows)

    saving = 1.0 - validation["selector"] / validation["full-set"]
    mtbi_gain_absence = mtbi["selector"] / mtbi["absence"]
    mtbi_gain_full = mtbi["selector"] / mtbi["full-set"]
    print(f"selector saves {100 * saving:.1f}% validation time "
          f"(paper 92.07%); MTBI {mtbi_gain_absence:.1f}x over absence "
          f"(paper 22.61x), {mtbi_gain_full:.2f}x over full set (paper 1.11x)")

    # Shape assertions.
    assert validation["absence"] == 0.0
    assert saving > 0.6
    assert mtbi_gain_absence > 8.0
    assert mtbi_gain_full > 0.95  # at or above the full set
    # The paper's explanation: the Selector has slightly *more*
    # incidents than the full set but wins on up time.
    assert incidents["selector"] >= incidents["full-set"]
    benchmark.extra_info["validation_saving_pct"] = round(100 * saving, 2)
    benchmark.extra_info["mtbi_gain_over_absence"] = round(mtbi_gain_absence, 2)
    benchmark.extra_info["mtbi_gain_over_full"] = round(mtbi_gain_full, 3)
