"""Table 5: repeatability after benchmark-parameter tuning.

The paper compares a fixed, generous step configuration (72 warm-up +
3,072 measurement steps) against Appendix B's adaptively searched
(w, n) on 64 H100 VMs: the tuned parameters keep repeatability within
1% of the fixed baseline while saving 67.5-78.3% of the validation
time across six end-to-end model families.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.benchsuite.base import run_benchmark
from repro.benchsuite.suite import suite_by_name
from repro.core.paramsearch import tune_window_across_nodes
from repro.core.repeatability import pairwise_repeatability
from repro.benchsuite.runner import StepWindow
from repro.hardware.fleet import build_fleet

MODELS = ("resnet-models", "densenet-models", "vgg-models",
          "lstm-models", "bert-models", "gpt-models")
FIXED = StepWindow(warmup=72, measure=3072)
FULL_STEPS = FIXED.total_steps


def node_series(model_name, nodes, seed):
    rng = np.random.default_rng(seed)
    spec = suite_by_name(model_name)
    metric = spec.metrics[0].name
    return {node.node_id:
            run_benchmark(spec, node, rng, n_steps=FULL_STEPS).metrics[metric]
            for node in nodes}


@pytest.fixture(scope="module")
def tuning_results():
    # 16 healthy VMs stand in for the 64-VM H100 testbed (the metric is
    # a mean of pairwise similarities; it stabilizes quickly).
    fleet = build_fleet(16, seed=77, defect_scale=0.0)
    results = {}
    for index, model in enumerate(MODELS):
        series = node_series(model, fleet.nodes, seed=700 + index)
        tuned = tune_window_across_nodes(series, 0.95)
        fixed_samples = [FIXED.apply(s) for s in series.values()]
        tuned_samples = [tuned.apply(s) for s in series.values()]
        results[model] = {
            "fixed_rep": pairwise_repeatability(fixed_samples),
            "tuned_rep": pairwise_repeatability(tuned_samples),
            "saving": 1.0 - tuned.total_steps / FULL_STEPS,
            "window": tuned,
        }
    return results


def test_table5_param_search(tuning_results, benchmark):
    # Kernel: one window search across nodes.
    fleet = build_fleet(8, seed=78, defect_scale=0.0)
    series = node_series("resnet-models", fleet.nodes, seed=799)
    benchmark.pedantic(lambda: tune_window_across_nodes(series, 0.95),
                       rounds=1, iterations=1)

    rows = []
    for model, r in tuning_results.items():
        rows.append((model,
                     f"{100 * r['fixed_rep']:.2f}%",
                     f"{100 * r['tuned_rep']:.2f}%",
                     f"{100 * r['saving']:.1f}%",
                     f"w={r['window'].warmup} n={r['window'].measure}"))
    print_table("Table 5: repeatability, fixed vs tuned parameters",
                ["model", "fixed", "tuned", "time saving", "tuned window"],
                rows)

    for model, r in tuning_results.items():
        # Shape: regression under 1.5% (paper: < 1%), saving in the
        # paper's 60-90% band.
        assert r["tuned_rep"] > r["fixed_rep"] - 0.015, model
        assert 0.55 < r["saving"] < 0.95, model
        # Tuned windows must still skip the warm-up transient.
        assert r["window"].warmup >= 24, model
    mean_saving = float(np.mean([r["saving"] for r in tuning_results.values()]))
    benchmark.extra_info["mean_time_saving_pct"] = round(100 * mean_saving, 1)
