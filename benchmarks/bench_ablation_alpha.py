"""Ablation: the similarity threshold alpha (the paper fixes 0.95).

Sweeps alpha over the criteria-learning + online-filtering pipeline on
one fleet and reports true/false positive trade-offs: a loose alpha
misses shallow defects, a strict one drowns in natural variance --
quantifying why the paper's empirical 0.95 sits where it does.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.validator import Validator
from repro.hardware.fleet import build_fleet
from repro.simulation.coverage import detection_map

SUBSET = ("ib-loopback", "mem-bw", "bert-models", "resnet-models",
          "cpu-memory-latency", "gemm-flops")
ALPHAS = (0.80, 0.90, 0.95, 0.98)


@pytest.fixture(scope="module")
def sweep():
    suite = tuple(suite_by_name(name) for name in SUBSET)
    fleet = build_fleet(250, seed=13)
    detectors = detection_map(suite, alpha=0.95)
    detectable = {
        node.node_id for node in fleet.defective_nodes
        if any(detectors.get(mode) for mode in node.defects)
    }
    results = {}
    for alpha in ALPHAS:
        validator = Validator(suite, runner=SuiteRunner(seed=5), alpha=alpha)
        validator.learn_criteria(fleet.nodes[:100])
        report = validator.validate(fleet.nodes)
        flagged = set(report.defective_nodes)
        truth = {n.node_id for n in fleet.defective_nodes}
        results[alpha] = {
            "tp": len(flagged & detectable),
            "fp": len(flagged - truth),
            "detectable": len(detectable),
        }
    return results


def test_ablation_alpha(sweep, benchmark):
    benchmark.pedantic(lambda: dict(sweep), rounds=3, iterations=1)

    rows = [(f"{alpha:.2f}",
             f"{r['tp']}/{r['detectable']}",
             r["fp"])
            for alpha, r in sweep.items()]
    print_table("Ablation: similarity threshold alpha",
                ["alpha", "detectable defects caught", "false positives"],
                rows)

    # Shape: recall non-decreasing in alpha; false positives explode
    # past the paper's 0.95 operating point.
    tps = [sweep[a]["tp"] for a in ALPHAS]
    assert tps == sorted(tps)
    assert sweep[0.95]["tp"] == sweep[0.95]["detectable"]
    assert sweep[0.98]["fp"] > 3 * max(sweep[0.95]["fp"], 1)
    assert sweep[0.95]["fp"] <= sweep[0.98]["fp"]
