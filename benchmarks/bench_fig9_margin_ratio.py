"""Figure 9: margin ratios of different criteria methods.

The paper compares Algorithm 2 against IQR and k-means criteria on
step-throughput series of end-to-end benchmarks from 144 MI250X VMs:
the CDF criteria achieves better (larger) margin ratios on 4 of 5
models, because the baselines classify marginal-but-healthy nodes as
defective, collapsing the margin.  We regenerate the comparison on a
simulated 144-VM fleet across the end-to-end model families, injecting
both clear defects and marginal performers.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analysis.baselines import iqr_criteria, kmeans_criteria, margin_ratio
from repro.benchsuite.base import run_benchmark
from repro.benchsuite.suite import suite_by_name
from repro.core.criteria import learn_criteria
from repro.hardware.components import Component
from repro.hardware.node import Node

MODELS = ("resnet-models", "densenet-models", "vgg-models",
          "lstm-models", "bert-models", "gpt-models")

#: Defective VMs per model family (defect counts differ per benchmark
#: in a real build-out; single-defect populations are where forced
#: k=2 clustering falls apart).
DEFECT_COUNTS = {
    "resnet-models": 8, "densenet-models": 1, "vgg-models": 2,
    "lstm-models": 1, "bert-models": 4, "gpt-models": 1,
}

#: Dominant pseudo-component per model family (for defect injection).
FAMILY_COMPONENT = {
    "resnet-models": Component.E2E_CNN_PATH,
    "densenet-models": Component.E2E_CNN_PATH,
    "vgg-models": Component.E2E_CNN_PATH,
    "lstm-models": Component.E2E_RNN_PATH,
    "bert-models": Component.E2E_TRANSFORMER_PATH,
    "gpt-models": Component.E2E_TRANSFORMER_PATH,
}


def collect_samples(model_name, seed):
    """144 VMs: a skewed healthy population plus clear defects.

    Healthy nodes concentrate near nominal with a thin marginal tail at
    ~2.6-3.2% slow (within the similarity threshold); a few jittery
    nodes have nominal means but doubled step noise; defective nodes
    sit at 7.5-8.2% slow, with per-model defect counts matching a real
    build-out's unevenness.  This is the paper's GPT-2 situation: the
    marginal tail falls past a mean-quartile fence, and single-defect
    populations break a forced two-way Euclidean clustering.
    """
    rng = np.random.default_rng(seed)
    spec = suite_by_name(model_name)
    component = FAMILY_COMPONENT[model_name]
    weight = spec.sensitivity[component]

    def health_for_shift(shift):
        """Component health producing the requested metric shift."""
        return float((1.0 - shift) ** (1.0 / weight))

    # Healthy population with two real-world complications:
    # * a thin *marginal* tail: slightly slow but within spec -- where
    #   mean-quartile fences land (the paper's GPT-2 complaint);
    # * a few *jittery* nodes: nominal mean but higher step variance,
    #   which Euclidean clustering confuses with defects.
    n_defects = DEFECT_COUNTS[model_name]
    n_healthy = 144 - n_defects
    shifts = np.clip(rng.gamma(1.0, 0.006, size=n_healthy - 3), 0.0, 0.02)
    shifts = np.concatenate([shifts, rng.uniform(0.026, 0.032, size=3)])
    nodes = [Node(node_id=f"vm-{i:03d}",
                  health={component: health_for_shift(s)})
             for i, s in enumerate(shifts)]
    nodes += [Node(node_id=f"bad-{i}",
                   health={component: health_for_shift(rng.uniform(0.075, 0.082))})
              for i in range(n_defects)]
    samples = []
    for node in nodes:
        series = run_benchmark(spec, node, rng, n_steps=400)
        samples.append(series.metrics[spec.metrics[0].name][150:])
    # Three jittery-but-healthy nodes (cooling fan cycling, noisy
    # neighbors): same mean, about double the step noise.
    for index in (10, 20, 30):
        extra = 1.0 + 0.012 * rng.standard_normal(samples[index].size)
        samples[index] = samples[index] * extra
    return samples


@pytest.fixture(scope="module")
def ratios():
    results = {}
    for index, model in enumerate(MODELS):
        samples = collect_samples(model, seed=900 + index)
        ours = learn_criteria(samples, 0.95, centroid="medoid")
        iqr = iqr_criteria(samples)
        km = kmeans_criteria(samples, seed=0)
        results[model] = {
            "ours": margin_ratio(samples, ours.criteria, ours.defect_indices),
            "iqr": margin_ratio(samples, iqr.criteria, iqr.defect_indices),
            "kmeans": margin_ratio(samples, km.criteria, km.defect_indices),
        }
    return results


def test_fig9_margin_ratio(ratios, benchmark):
    # Time one criteria-learning pass as the kernel.
    samples = collect_samples("bert-models", seed=999)
    benchmark.pedantic(lambda: learn_criteria(samples, 0.95, centroid="medoid"),
                       rounds=1, iterations=1)

    rows = [(model,
             f"{values['ours']:.2f}",
             f"{values['iqr']:.2f}",
             f"{values['kmeans']:.2f}")
            for model, values in ratios.items()]
    print_table("Figure 9: margin ratio per criteria method (144 VMs)",
                ["model", "Algorithm 2", "IQR", "k-means"], rows)

    wins_iqr = sum(1 for v in ratios.values() if v["ours"] >= v["iqr"])
    wins_km = sum(1 for v in ratios.values() if v["ours"] >= v["kmeans"])
    print(f"Algorithm 2 >= IQR on {wins_iqr}/{len(MODELS)} models, "
          f">= k-means on {wins_km}/{len(MODELS)} (paper: 4/5 each)")

    # Shape: our criteria wins on most models and always keeps a real
    # margin (> 1 means defects are strictly farther than any healthy
    # node).
    assert wins_iqr >= len(MODELS) - 2
    assert wins_km >= len(MODELS) - 2
    assert all(v["ours"] > 1.0 for v in ratios.values())
    benchmark.extra_info["wins_vs_iqr"] = wins_iqr
    benchmark.extra_info["wins_vs_kmeans"] = wins_km
