"""Table 6: effectiveness and repeatability in real deployment.

The paper's build-out dataset (24k+ A100 GPUs / 3k+ VMs, 24 benchmarks):
per-benchmark defect shares led by IB HCA loopback (6.04%) and
H2D/D2H bandwidth (2.03%), all effective benchmarks above 97.5%
repeatability, and 10.36% of nodes filtered in total.  We regenerate
the table on a simulated build-out fleet: criteria learned on a
sample, the whole fleet screened online, repeatability measured among
healthy nodes.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import full_suite, total_metric_count
from repro.core.repeatability import pairwise_repeatability
from repro.core.validator import Validator
from repro.hardware.fleet import build_fleet

PAPER_SHARES = {
    "ib-loopback": 6.04, "mem-bw": 2.03, "bert-models": 1.59,
    "cpu-memory-latency": 1.33, "nccl-bw-ib-single": 1.10,
    "resnet-models": 0.73, "gpt-models": 0.53, "lstm-models": 0.46,
    "densenet-models": 0.40, "matmul-allreduce-overlap": 0.33,
    "nccl-bw-nvlink": 0.30, "gemm-flops": 0.23,
}

FLEET_SIZE = 600


@pytest.fixture(scope="module")
def deployment():
    fleet = build_fleet(FLEET_SIZE, seed=11)
    validator = Validator(full_suite(), runner=SuiteRunner(seed=3), alpha=0.95)
    validator.learn_criteria(fleet.nodes[:120])
    report = validator.validate(fleet.nodes)
    return fleet, validator, report


def test_table6_deployment(deployment, benchmark):
    fleet, validator, report = deployment

    # Kernel: the online screening of one node against all criteria.
    node = fleet.nodes[0]

    def screen_one():
        for spec in validator.suite:
            result = validator.runner.run(spec, node)
            validator.check_result(spec, result)

    benchmark.pedantic(screen_one, rounds=3, iterations=1)

    flagged = set(report.defective_nodes)
    by_benchmark = report.violations_by_benchmark()
    healthy = [n for n in fleet.nodes if n.node_id not in flagged][:20]
    runner = SuiteRunner(seed=17)

    rows = []
    shares = {}
    for spec in full_suite():
        share = 100 * len(by_benchmark.get(spec.name, ())) / FLEET_SIZE
        shares[spec.name] = share
        if share == 0.0 and spec.name not in PAPER_SHARES:
            continue
        samples = [runner.run(spec, n).sample(spec.metrics[0].name)
                   for n in healthy]
        repeatability = pairwise_repeatability(samples)
        paper = PAPER_SHARES.get(spec.name)
        rows.append((spec.name, f"{100 * repeatability:.2f}%",
                     f"{share:.2f}%",
                     f"{paper:.2f}%" if paper is not None else "-"))
    rows.sort(key=lambda r: -float(r[2].rstrip("%")))
    print_table(
        f"Table 6: {FLEET_SIZE} VMs, 24 benchmarks, "
        f"{total_metric_count()} metrics",
        ["benchmark", "repeatability", "defects", "paper defects"], rows)
    total_share = 100 * len(flagged) / FLEET_SIZE
    print(f"total defective nodes (deduplicated): {total_share:.2f}% "
          f"(paper 10.36%)")

    # Shape: IB HCA loopback leads, H2D/D2H second among micros; the
    # overall defect ratio lands near 10%.
    top = max(shares, key=shares.get)
    assert top == "ib-loopback"
    assert shares["ib-loopback"] > shares["mem-bw"] > shares["gemm-flops"]
    assert shares["bert-models"] >= shares["gpt-models"]
    assert 6.0 < total_share < 17.0
    # Repeatability floor of the effective benchmarks (paper: > 97.5%).
    for name, repeatability, *_ in rows:
        assert float(repeatability.rstrip("%")) > 97.0, name
    benchmark.extra_info["total_defect_share_pct"] = round(total_share, 2)
