"""Shared helpers for the experiment-regeneration benches.

Every module in this directory regenerates one table or figure of the
paper.  Each bench

* computes the experiment once (module-scoped fixtures),
* prints the same rows/series the paper reports (run with ``-s`` to
  see them),
* asserts the paper's *shape* (orderings, ratios, crossovers), and
* times a representative kernel through the ``benchmark`` fixture so
  ``pytest benchmarks/ --benchmark-only`` produces a performance
  report.

Absolute values come from the simulated substrate, so they are not
expected to match the paper's testbed numbers; EXPERIMENTS.md records
the paper-vs-measured comparison.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render one paper-style table to stdout."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) + 2
              for i, h in enumerate(headers)]
    print(f"\n=== {title} ===")
    print("".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("-" * sum(widths))
    for row in rows:
        print("".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()
