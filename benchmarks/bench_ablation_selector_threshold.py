"""Ablation: the Selector's residual-probability target p0.

The paper's Selector skips validation when the joint incident
probability is already below p0 and otherwise selects until the
residual falls under it.  Sweeping p0 traces the validation-cost vs
MTBI frontier between the full-set policy (p0 -> 0) and no validation
(p0 -> 1).
"""

import pytest

from conftest import print_table
from repro.simulation.cluster import ClusterSimulator, SimulationConfig
from repro.simulation.generator import generate_allocation_trace
from repro.simulation.metrics import build_policies

P0_VALUES = (0.005, 0.02, 0.10, 0.40)


@pytest.fixture(scope="module")
def sweep():
    config = SimulationConfig(n_nodes=48, horizon_hours=720.0, seed=9)
    trace = generate_allocation_trace(720.0, jobs_per_hour=1.2,
                                      max_job_nodes=12,
                                      mean_duration_hours=18.0, seed=10)
    results = {}
    for p0 in P0_VALUES:
        policy = build_policies(config, p0=p0)["selector"]
        results[p0] = ClusterSimulator(config, policy, trace).run()
    return results


def test_ablation_selector_threshold(sweep, benchmark):
    benchmark.pedantic(lambda: {p: r.mtbi_hours for p, r in sweep.items()},
                       rounds=3, iterations=1)

    rows = [(f"{p0:.3f}",
             f"{r.average_validation_hours:.1f}",
             f"{r.mtbi_hours:.1f}",
             f"{r.average_incidents:.2f}",
             f"{100 * r.average_utilization:.1f}%",
             r.validations_skipped)
            for p0, r in sweep.items()]
    print_table("Ablation: Selector residual-probability target p0",
                ["p0", "validation (h)", "MTBI (h)", "incidents/node",
                 "utilization", "skips"],
                rows)

    validation = [sweep[p].average_validation_hours for p in P0_VALUES]
    incidents = [sweep[p].average_incidents for p in P0_VALUES]
    # Shape: looser p0 -> monotonically less validation, more incidents.
    assert validation == sorted(validation, reverse=True)
    assert incidents[-1] >= incidents[0]
    # Everything on the frontier still beats no validation by far.
    assert all(r.average_incidents < 8.0 for r in sweep.values())
