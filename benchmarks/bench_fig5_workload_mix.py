"""Figure 5: GPU job percentage for diverse workloads.

The paper analyzes 56k+ GPU jobs: Transformers dominate, CNNs follow,
and a large share inside each family cannot be identified (35.5% of
Transformers) -- the diversity argument for pairing a few end-to-end
benchmarks with component-wise micro-benchmarks.
"""

import pytest

from conftest import print_table
from repro.workloads.distribution import (
    WORKLOAD_MIX,
    benchmark_coverage_of_mix,
    family_shares,
    sample_jobs,
)


def test_fig5_workload_mix(benchmark):
    jobs = benchmark.pedantic(lambda: sample_jobs(56_000, seed=55),
                              rounds=1, iterations=1)

    counts: dict[tuple[str, str], int] = {}
    for job in jobs:
        key = (job.family, job.model)
        counts[key] = counts.get(key, 0) + 1
    rows = [(family, model, f"{100 * count / len(jobs):.1f}%")
            for (family, model), count in sorted(counts.items(),
                                                 key=lambda kv: -kv[1])]
    print_table(f"Figure 5: workload mix over {len(jobs)} jobs",
                ["family", "model", "share"], rows)

    shares = family_shares()
    print_table("Figure 5: family aggregate",
                ["family", "share"],
                [(f, f"{100 * s:.1f}%") for f, s in sorted(shares.items(),
                                                           key=lambda kv: -kv[1])])

    # Shape: Transformers > CNN > other; large unidentified share;
    # the end-to-end benchmark set still represents most jobs.
    assert shares["transformer"] > shares["cnn"] > shares["other"]
    unidentified = sum(i.share for i in WORKLOAD_MIX if i.model == "unidentified")
    assert unidentified > 0.2
    transformer_unknown = sum(
        i.share for i in WORKLOAD_MIX
        if i.family == "transformer" and i.model == "unidentified"
    ) / shares["transformer"]
    assert transformer_unknown == pytest.approx(0.355, abs=0.08)
    assert benchmark_coverage_of_mix() > 0.8
    benchmark.extra_info["e2e_coverage"] = benchmark_coverage_of_mix()
