"""Figure 8: simulated average node utilization per selection policy.

Paper values over 30 days: Selector 90.70%, a 4.81x improvement over
no validation and 1.09x over full-set validation, with the ideal
(defect-free) bound above everything.  We regenerate the comparison on
the simulated cluster; absolute utilizations differ (our repair and
scheduling constants are not Azure's) but the ordering and the
direction of every gap must hold.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.simulation.cluster import SimulationConfig
from repro.simulation.generator import generate_allocation_trace
from repro.simulation.metrics import run_policy_comparison


@pytest.fixture(scope="module")
def comparison():
    config = SimulationConfig(n_nodes=64, horizon_hours=720.0, seed=1)
    trace = generate_allocation_trace(720.0, jobs_per_hour=24.0 / 18.0,
                                      max_job_nodes=16,
                                      mean_duration_hours=18.0, seed=2)
    return run_policy_comparison(config, trace, p0=0.02)


def test_fig8_utilization(comparison, benchmark):
    # Time one fresh selector-policy simulation as the benchmark kernel.
    from repro.simulation.cluster import ClusterSimulator
    from repro.simulation.metrics import build_policies

    config = SimulationConfig(n_nodes=24, horizon_hours=240.0, seed=3)
    trace = generate_allocation_trace(240.0, jobs_per_hour=1.0,
                                      max_job_nodes=8,
                                      mean_duration_hours=12.0, seed=4)
    policy = build_policies(config, p0=0.02)["selector"]
    benchmark.pedantic(lambda: ClusterSimulator(config, policy, trace).run(),
                       rounds=3, iterations=1)

    utilization = comparison.utilization_row()
    paper = {"absence": 18.9, "full-set": 83.2, "selector": 90.7, "ideal": 100.0}
    rows = [(name, f"{100 * utilization[name]:.1f}%", f"~{paper[name]:.0f}%")
            for name in ("absence", "full-set", "selector", "ideal")]
    print_table("Figure 8: average node utilization, 30 days",
                ["policy", "measured", "paper"], rows)

    daily = comparison.results["selector"].daily_utilization()
    print("selector daily utilization:",
          " ".join(f"{100 * u:.0f}" for u in daily))

    # Shape: ideal > selector > full-set > absence, with a large
    # selector-over-absence factor.
    assert utilization["ideal"] > utilization["selector"]
    assert utilization["selector"] > utilization["full-set"]
    assert utilization["full-set"] > utilization["absence"]
    assert utilization["selector"] / utilization["absence"] > 1.5
    for name, value in utilization.items():
        benchmark.extra_info[name] = round(100 * value, 2)
