"""Figure 2: incidents' troubleshooting-duration distribution.

The paper reports that 38.1% of incidents take more than one day to
resolve and 10.3% more than two weeks, motivating the ~1.5-day repair
expectancy used in the simulation.  We regenerate the distribution
from the trace generator's time-to-resolve mixture.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.simulation.generator import (
    expected_time_to_resolve,
    sample_time_to_resolve,
)


@pytest.fixture(scope="module")
def durations():
    # Sample the time-to-resolve distribution directly: inside a short
    # trace window, multi-week tickets would be truncated by the
    # horizon and bias the tail.
    rng = np.random.default_rng(202)
    return np.array([sample_time_to_resolve(rng) for _ in range(20_000)])


def test_fig2_ttr_distribution(durations, benchmark):
    def cdf_points():
        thresholds = [1.0, 6.0, 24.0, 72.0, 168.0, 336.0]
        return {t: float(np.mean(durations > t)) for t in thresholds}

    tails = benchmark.pedantic(cdf_points, rounds=3, iterations=1)
    rows = [(f"> {t:g} h", f"{100 * share:.1f}%")
            for t, share in sorted(tails.items())]
    rows.append(("mean (h)", f"{durations.mean():.1f}"))
    rows.append(("mixture expectancy (h)", f"{expected_time_to_resolve():.1f}"))
    print_table("Figure 2: troubleshooting duration tails "
                f"({durations.size} incidents)", ["duration", "share"], rows)

    # Shape: the paper's quoted tails.
    assert tails[24.0] == pytest.approx(0.381, abs=0.04)
    assert tails[336.0] == pytest.approx(0.103, abs=0.03)
    # The repair expectancy motivates the ~36 h simulation constant.
    assert 30.0 < durations.mean() < 110.0
    benchmark.extra_info["p_over_1day"] = tails[24.0]
    benchmark.extra_info["p_over_2weeks"] = tails[336.0]
