"""Ablation: greedy Algorithm 1 vs exhaustive optimal selection.

The paper argues the O(n^2) greedy heuristic is a sound replacement
for the O(2^n) exhaustive search.  On randomly drawn coverage tables
small enough to enumerate, we measure how often greedy matches the
optimal subset cost and how large the worst-case gap gets.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.core.selection import (
    CoverageTable,
    select_benchmarks,
    select_benchmarks_exhaustive,
)


def random_instance(rng, n_benchmarks=8, n_defects=20):
    table = CoverageTable()
    durations = {}
    for i in range(n_benchmarks):
        name = f"b{i}"
        size = int(rng.integers(1, n_defects // 2))
        table.record(name, set(rng.choice(n_defects, size=size,
                                          replace=False).tolist()))
        durations[name] = float(rng.uniform(2.0, 60.0))
    return table, durations


@pytest.fixture(scope="module")
def gap_study():
    rng = np.random.default_rng(123)
    gaps = []
    feasible_matches = 0
    trials = 60
    for _ in range(trials):
        table, durations = random_instance(rng)
        probs = rng.uniform(0.2, 0.9, size=int(rng.integers(1, 6)))
        p0 = float(rng.uniform(0.02, 0.2))
        greedy = select_benchmarks(probs, durations, table, p0)
        optimal = select_benchmarks_exhaustive(probs, durations, table, p0)
        greedy_ok = greedy.residual_probability <= p0
        optimal_ok = optimal.residual_probability <= p0
        if greedy_ok and optimal_ok:
            ratio = (greedy.total_time_minutes
                     / max(optimal.total_time_minutes, 1e-9))
            gaps.append(ratio)
            if ratio <= 1.0 + 1e-9:
                feasible_matches += 1
        else:
            # Greedy must be feasible whenever the optimum is.
            assert greedy_ok == optimal_ok
    return np.array(gaps), feasible_matches, trials


def test_ablation_greedy_vs_exhaustive(gap_study, benchmark):
    gaps, matches, trials = gap_study

    rng = np.random.default_rng(7)
    table, durations = random_instance(rng)

    def greedy_call():
        return select_benchmarks([0.8, 0.6], durations, table, 0.05)

    benchmark.pedantic(greedy_call, rounds=10, iterations=1)

    print_table("Ablation: greedy Algorithm 1 vs exhaustive optimum",
                ["statistic", "value"],
                [("feasible instances", len(gaps)),
                 ("greedy == optimal", f"{matches}/{len(gaps)}"),
                 ("mean time ratio", f"{gaps.mean():.3f}"),
                 ("worst time ratio", f"{gaps.max():.3f}")])

    # Shape: greedy matches the optimum on roughly half the instances,
    # stays within ~10% on average and is never pathological -- the
    # paper's justification for trading O(2^n) for O(n^2).
    assert matches / len(gaps) > 0.35
    assert gaps.mean() < 1.3
    assert gaps.max() < 2.5
    benchmark.extra_info["mean_ratio"] = float(gaps.mean())
    benchmark.extra_info["worst_ratio"] = float(gaps.max())
