"""Appendix A: networking-validation scan round counts and correctness.

Full scan: all N(N-1)/2 NIC pairs scheduled into N-1 rounds of N/2
concurrent, NIC-disjoint pairs (circle method) -- O(n) rounds instead
of O(n^2).  Quick scan: one round per fat-tree tier regardless of
node count -- O(1) rounds.
"""

import pytest

from conftest import print_table
from repro.netval.pairs import round_robin_schedule, validate_schedule
from repro.netval.topo_aware import quick_scan_schedule, validate_quick_scan
from repro.topology.fattree import FatTree, FatTreeConfig


@pytest.fixture(scope="module")
def scan_rows():
    rows = []
    for n in (8, 24, 64, 192, 512):
        endpoints = list(range(n))
        rounds = round_robin_schedule(endpoints)
        validate_schedule(endpoints, rounds)
        tree = FatTree(FatTreeConfig(n_nodes=n, nodes_per_tor=4,
                                     tors_per_pod=4))
        quick = quick_scan_schedule(tree)
        validate_quick_scan(tree, quick)
        rows.append((n, n * (n - 1) // 2, len(rounds), len(quick)))
    return rows


def test_appendix_netval_scans(scan_rows, benchmark):
    benchmark.pedantic(lambda: round_robin_schedule(list(range(192))),
                       rounds=5, iterations=1)

    print_table("Appendix A: scan rounds vs fabric size",
                ["NICs/nodes", "total pairs", "full-scan rounds",
                 "quick-scan rounds"],
                scan_rows)

    for n, pairs, full_rounds, quick_rounds in scan_rows:
        # O(n): exactly n-1 rounds for even n.
        assert full_rounds == n - 1
        # O(1): bounded by the tree depth.
        assert quick_rounds <= 3
    # Quick scan round count does not grow with the fabric.
    quick_counts = [row[3] for row in scan_rows if row[0] >= 24]
    assert len(set(quick_counts)) == 1
