"""Figure 3: 2-node all-reduce bandwidth CDFs vs. ToR uplink redundancy.

The paper's 24-node / 192-NIC fat-tree testbed: when some ToR switches
have fewer than 50% of their redundant uplinks up, concurrent 2-node
all-reduce pairs crossing them lose bus bandwidth; once every involved
ToR is repaired back to at least half redundancy, all pairs return to
normal.  We regenerate both CDFs on the simulated fabric.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.topology import FatTree, FatTreeConfig, allreduce_pair_bandwidths


def build_tree():
    return FatTree(FatTreeConfig(n_nodes=24, nodes_per_tor=4, tors_per_pod=3,
                                 uplinks_per_tor=20, redundant_uplinks=4,
                                 nics_per_node=8))


def concurrent_pairs(tree):
    pairs = []
    for tor in range(0, tree.n_tors, 2):
        pairs.extend(zip(tree.nodes_in_tor(tor), tree.nodes_in_tor(tor + 1)))
    return pairs


@pytest.fixture(scope="module")
def scenario():
    rng = np.random.default_rng(3)
    healthy_tree = build_tree()
    pairs = concurrent_pairs(healthy_tree)
    healthy = [p.bandwidth_gbps
               for p in allreduce_pair_bandwidths(healthy_tree, pairs,
                                                  noise_cv=0.004, rng=rng)]

    broken_tree = build_tree()
    broken_tree.fail_uplinks(0, 3)  # < 50% of redundancy left
    broken_tree.fail_uplinks(3, 3)
    broken = [p.bandwidth_gbps
              for p in allreduce_pair_bandwidths(broken_tree, pairs,
                                                 noise_cv=0.004, rng=rng)]
    return np.sort(healthy), np.sort(broken), broken_tree, pairs


def test_fig3_redundancy_cdf(scenario, benchmark):
    healthy, broken, broken_tree, pairs = scenario

    def simulate_once():
        return allreduce_pair_bandwidths(broken_tree, pairs,
                                         rng=np.random.default_rng(0))

    benchmark.pedantic(simulate_once, rounds=5, iterations=1)

    quantiles = [0.0, 0.25, 0.5, 0.75, 1.0]
    rows = [(f"{int(100 * q)}%",
             f"{np.quantile(broken, q):.1f}",
             f"{np.quantile(healthy, q):.1f}")
            for q in quantiles]
    print_table("Figure 3: 2-node all-reduce bus bandwidth CDF (GB/s)",
                ["quantile", "<50% redundancy up", ">=50% redundancy up"], rows)

    # Shape (a): with broken ToRs the CDF is bimodal -- a degraded mode
    # well below the healthy band plus an unaffected mode inside it.
    degraded_share = np.mean(broken < 0.97 * healthy.min())
    assert 0.3 < degraded_share < 0.8
    # Shape (b): healthy CDF is tight.
    assert (healthy.max() - healthy.min()) / healthy.mean() < 0.05
    # Repairing every involved ToR to >= 50% restores all pairs.
    broken_tree.repair_uplinks(0, 1)
    broken_tree.repair_uplinks(3, 1)
    repaired = [p.bandwidth_gbps for p in allreduce_pair_bandwidths(
        broken_tree, pairs, noise_cv=0.0)]
    assert min(repaired) > 0.99 * healthy.min()
    benchmark.extra_info["degraded_pair_share"] = float(degraded_share)
