"""Figure 4: mean time between i-th incidents, and job time-to-failure.

Left panel: the mean duration between a node's i-th and (i+1)-th
incidents shrinks from 719.4 h (before the first incident) to 151.7 h
by the twentieth -- the redundancy-erosion signature.  Right panel:
under a constant per-node rate, a gang-scheduled job's time to failure
shrinks inversely with its node count.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.hardware.degradation import WearModel
from repro.simulation.generator import generate_incident_trace
from repro.simulation.metrics import (
    job_time_to_failure_curve,
    mean_time_between_ith_incidents,
)


@pytest.fixture(scope="module")
def long_trace():
    # The Figure 4 cluster: paper-calibrated wear, long horizon so many
    # nodes reach their 20th incident.
    wear = WearModel()  # base 719.4 h, gamma calibrated to 151.7 h at i=20
    return generate_incident_trace(600, 20_000.0, wear=wear,
                                   frailty_sigma=0.15, seed=44)


def test_fig4_mtbi_decay(long_trace, benchmark):
    gaps = benchmark.pedantic(
        lambda: mean_time_between_ith_incidents(long_trace, max_index=20),
        rounds=1, iterations=1)

    rows = [(i + 1, f"{gap:.1f}") for i, gap in enumerate(gaps)
            if np.isfinite(gap)]
    print_table("Figure 4 (left): mean time between i-th incidents (h)",
                ["incident index", "mean gap (h)"], rows)

    # Shape: ~719 h before the first incident, decaying to ~152 h by
    # the 20th (ratio ~4.7x).
    assert gaps[0] == pytest.approx(719.4, rel=0.15)
    assert gaps[19] == pytest.approx(151.7, rel=0.25)
    assert gaps[0] / gaps[19] > 3.0
    # Monotone decay (tolerating sampling noise at the tail).
    smoothed = np.convolve(gaps, np.ones(3) / 3, mode="valid")
    assert smoothed[0] > smoothed[-1]

    # Right panel: jobs at scale, assuming the i-th incident rate.
    wear = WearModel()
    for index in (0, 9, 19):
        curve = job_time_to_failure_curve(
            wear.mean_time_between_incidents(index),
            node_counts=(1, 8, 64, 512))
        assert curve[512] == pytest.approx(curve[1] / 512.0)
    curve_first = job_time_to_failure_curve(gaps[0], node_counts=(1, 8, 64, 512))
    print_table("Figure 4 (right): job time-to-failure at the 1st incident (h)",
                ["job nodes", "expected TTF (h)"],
                [(n, f"{v:.2f}") for n, v in sorted(curve_first.items())])
