"""Ablation: cold-start Selector with self-evolving coverage.

The paper's system "evolves in tandem with the latest node statuses":
validation outcomes feed the coverage table that Algorithm 1 selects
from (§3.1, Figure 7).  This bench compares three Selectors over the
same month:

* **warm** -- coverage bootstrapped from a build-out dataset (the
  default elsewhere);
* **cold + evolve** -- starts with an *empty* table; every caught
  defect and every post-mortem incident teaches it;
* **cold frozen** -- empty table, never updated: Algorithm 1 can never
  justify any benchmark, so validation effectively never runs.

Shape: cold+evolve converges toward warm (bootstrap through early
incidents), while cold-frozen degenerates to the no-validation
baseline.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.core.selection import CoverageTable
from repro.simulation.cluster import ClusterSimulator, SimulationConfig
from repro.simulation.coverage import analytic_coverage_table
from repro.simulation.generator import generate_allocation_trace
from repro.simulation.metrics import suite_durations
from repro.simulation.policies import SelectorPolicy
from repro.benchsuite.suite import full_suite


@pytest.fixture(scope="module")
def study():
    config = SimulationConfig(n_nodes=48, horizon_hours=720.0, seed=21)
    trace = generate_allocation_trace(720.0, jobs_per_hour=1.2,
                                      max_job_nodes=12,
                                      mean_duration_hours=18.0, seed=22)
    durations = suite_durations()
    wear = config.wear_model()

    def run(coverage, evolve):
        policy = SelectorPolicy(durations, coverage, wear, p0=0.02)
        simulator = ClusterSimulator(config, policy, trace,
                                     evolve_coverage=evolve)
        return simulator.run(), coverage

    warm, _ = run(analytic_coverage_table(full_suite()), evolve=False)
    evolved, evolved_table = run(CoverageTable(), evolve=True)
    frozen, _ = run(CoverageTable(), evolve=False)
    return warm, evolved, evolved_table, frozen


def test_ablation_evolving_coverage(study, benchmark):
    warm, evolved, evolved_table, frozen = study
    benchmark.pedantic(lambda: evolved_table.coverage(evolved_table.benchmarks),
                       rounds=5, iterations=1)

    rows = [
        ("warm (build-out bootstrap)", f"{warm.mtbi_hours:.1f}",
         f"{warm.average_incidents:.2f}", f"{warm.average_validation_hours:.1f}"),
        ("cold + self-evolving", f"{evolved.mtbi_hours:.1f}",
         f"{evolved.average_incidents:.2f}",
         f"{evolved.average_validation_hours:.1f}"),
        ("cold, frozen", f"{frozen.mtbi_hours:.1f}",
         f"{frozen.average_incidents:.2f}",
         f"{frozen.average_validation_hours:.1f}"),
    ]
    print_table("Ablation: coverage bootstrap over 30 days",
                ["selector variant", "MTBI (h)", "incidents/node",
                 "validation (h)"],
                rows)
    learned_modes = {key[0] for defects in evolved_table.found.values()
                     for key in defects}
    print(f"cold-start table learned {len(learned_modes)} defect modes, "
          f"{len(evolved_table.all_defects())} historical defects")

    # Shape: frozen coverage degenerates to no validation; the
    # self-evolving table closes most of the gap to the warm bootstrap.
    assert frozen.average_validation_hours == 0.0
    assert evolved.average_validation_hours > 0.0
    assert evolved.mtbi_hours > 2.0 * frozen.mtbi_hours
    assert evolved.mtbi_hours > 0.5 * warm.mtbi_hours
    assert len(learned_modes) >= 5
