"""Table 3: TBNI prediction accuracy of incident-probability models.

Paper values: Exponential 75.12%, Exponential-per-incident-count
63.03%, Exponential-per-hour 75.12%, Cox-Time 93.13%.  We regenerate
the comparison on a synthetic fleet whose hazards are heterogeneous
(log-normal frailty with telemetry covariates) and wear-shaped
(Weibull within-episode hazard), using the paper's conventions:
80/20 split, predictions and actuals capped at the 2,400-hour trace
length, censored rows recorded at the cap.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.hardware.degradation import WearModel
from repro.simulation.generator import generate_incident_trace
from repro.survival.coxtime import CoxTimeModel
from repro.survival.data import extract_status_samples
from repro.survival.exponential import (
    ExponentialModel,
    ExponentialPerHour,
    ExponentialPerIncidentCount,
)
from repro.survival.metrics import evaluate_model

PAPER = {
    "Exponential Distribution": 75.12,
    "Exponential Distribution per Incident Count": 63.03,
    "Exponential Distribution per Hour": 75.12,
    "Cox-Time Model": 93.13,
}


@pytest.fixture(scope="module")
def datasets():
    wear = WearModel(base_mtbi_hours=5000.0)
    trace = generate_incident_trace(600, 2400.0, wear=wear,
                                    frailty_sigma=1.4, gap_shape=3.0, seed=5)
    fit_ds = extract_status_samples(trace, snapshot_interval_hours=48.0)
    score_ds = extract_status_samples(trace, snapshot_interval_hours=48.0,
                                      censored_tbni="horizon")
    train, _ = fit_ds.split(0.8, seed=0)
    _, test = score_ds.split(0.8, seed=0)
    return train, test


@pytest.fixture(scope="module")
def accuracies(datasets):
    train, test = datasets
    results = {}
    results["Exponential Distribution"] = evaluate_model(
        ExponentialModel().fit(train), test, events_only=False)
    results["Exponential Distribution per Incident Count"] = evaluate_model(
        ExponentialPerIncidentCount().fit(train), test, events_only=False)
    results["Exponential Distribution per Hour"] = evaluate_model(
        ExponentialPerHour().fit(train), test, events_only=False)
    cox = CoxTimeModel(hidden=(64, 64), epochs=80, n_controls=8,
                       learning_rate=0.01, grid_size=128, seed=0).fit(train)
    results["Cox-Time Model"] = evaluate_model(cox, test, events_only=False)
    return results, cox, test


def test_table3_probability_models(accuracies, benchmark):
    results, cox, test = accuracies

    # Time the online prediction path (what the Selector calls).
    sample = test.covariates[:256]
    benchmark.pedantic(lambda: cox.incident_probability(sample, 24.0),
                       rounds=5, iterations=1)

    rows = [(name, f"{100 * acc:.2f}%", f"{PAPER[name]:.2f}%")
            for name, acc in results.items()]
    print_table(f"Table 3: TBNI accuracy on {len(test)} status samples",
                ["model", "measured", "paper"], rows)

    # Shape: Cox-Time clearly wins; exponential baselines sit in the
    # low-to-mid 70s-80s band.
    cox_acc = results["Cox-Time Model"]
    baselines = [acc for name, acc in results.items() if name != "Cox-Time Model"]
    assert cox_acc > max(baselines) + 0.03
    assert cox_acc > 0.85
    assert all(0.60 < acc < 0.88 for acc in baselines)
    for name, acc in results.items():
        benchmark.extra_info[name] = round(100 * acc, 2)
