#!/usr/bin/env python
"""Quickstart: validate a small GPU fleet with the full benchmark set.

Builds a 60-VM fleet with the default gray-failure catalog, learns
benchmark criteria from the build-out runs (Algorithm 2), screens the
fleet online with the one-sided similarity filter, and prints which
benchmark caught which node -- the paper's Table 6 flow in miniature.

Run:  python examples/quickstart.py
"""

from repro import Validator, build_fleet, full_suite
from repro.benchsuite import SuiteRunner


def main():
    print("Building a 60-VM fleet with injected gray failures...")
    fleet = build_fleet(60, seed=7)
    truth = {node.node_id: node.defects for node in fleet.defective_nodes}
    print(f"  ground truth: {len(truth)} defective nodes "
          f"({100 * fleet.defect_ratio:.1f}%)\n")

    validator = Validator(full_suite(), runner=SuiteRunner(seed=1), alpha=0.95)

    print("Learning criteria from build-out runs (24 benchmarks)...")
    validator.learn_criteria(fleet.nodes)

    print("Screening the fleet against the learned criteria...\n")
    report = validator.validate(fleet.nodes)

    print(f"{'node':<12} {'flagged by':<30} injected defects")
    print("-" * 70)
    by_benchmark = report.violations_by_benchmark()
    for node_id in report.defective_nodes:
        benchmarks = sorted(b for b, nodes in by_benchmark.items()
                            if node_id in nodes)
        injected = truth.get(node_id, ["(false positive)"])
        print(f"{node_id:<12} {', '.join(benchmarks):<30} {', '.join(injected)}")

    flagged = set(report.defective_nodes)
    caught = sum(1 for node_id in truth if node_id in flagged)
    print("-" * 70)
    print(f"caught {caught}/{len(truth)} injected defects; "
          f"{len(flagged - set(truth))} false positives; "
          f"{len(report.healthy_nodes)} nodes delivered as healthy")

    # Every measurement travels the spine as a provenance-carrying
    # MetricWindow; the Validator and runner count their stages as the
    # data flows through (execute -> sanitize -> learn -> score).
    spec = full_suite()[0]
    window = validator.runner.run(spec, fleet.nodes[0]).windows[0]
    print(f"\none window of provenance: node={window.node_id} "
          f"metric={window.metric} n={window.n} "
          f"higher_is_better={window.higher_is_better} "
          f"sanitized={window.sanitized}")
    print("pipeline stages (stage: runs, seconds):")
    merged = validator.stats.merge(validator.runner.stats)
    for stage, entry in merged.snapshot().items():
        print(f"  {stage:<8} {int(entry['count']):6d} "
              f"{entry['seconds']:8.3f}s")


if __name__ == "__main__":
    main()
