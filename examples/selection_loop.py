#!/usr/bin/env python
"""Event-driven Selector + Validator loop (the Figure 7 workflow).

Trains a Cox-Time incident-probability model on a synthetic incident
trace, wires it into a Selector with historical benchmark coverage,
and replays a stream of orchestration events through the ANUBIS
facade: node additions validate with the full set; job allocations are
risk-gated and validated with Algorithm 1 subsets or skipped entirely.

Run:  python examples/selection_loop.py
"""

import numpy as np

from repro import (
    Anubis,
    Selector,
    Validator,
    build_fleet,
    extract_status_samples,
    full_suite,
    generate_incident_trace,
)
from repro.benchsuite import SuiteRunner
from repro.core import NodeStatus
from repro.core.system import EventKind, ValidationEvent
from repro.hardware import WearModel
from repro.simulation import analytic_coverage_table, suite_durations
from repro.survival import CoxTimeModel


def train_probability_model():
    """Offline step: fit Cox-Time on a synthetic incident trace."""
    print("Training the Cox-Time incident-probability model...")
    wear = WearModel(base_mtbi_hours=5000.0)
    trace = generate_incident_trace(200, 2400.0, wear=wear,
                                    frailty_sigma=1.4, gap_shape=3.0, seed=5)
    dataset = extract_status_samples(trace, snapshot_interval_hours=96.0)
    model = CoxTimeModel(hidden=(32, 32), epochs=20, seed=0).fit(dataset)
    print(f"  trained on {len(dataset)} status samples, "
          f"{len(dataset.feature_names)} covariates\n")
    return model, dataset


def main():
    model, dataset = train_probability_model()

    fleet = build_fleet(24, seed=3)
    validator = Validator(full_suite(), runner=SuiteRunner(seed=9))
    print("Learning validation criteria on the fleet...")
    validator.learn_criteria(fleet.nodes)

    selector = Selector(model, analytic_coverage_table(full_suite()),
                        suite_durations(), p0=0.10)
    system = Anubis(validator, selector)

    # Covariate templates: a fresh node and a battle-scarred one.
    fresh = dataset.covariates[np.argmin(dataset.feature("incident_count"))]
    scarred = dataset.covariates[np.argmax(dataset.feature("incident_count"))]

    def statuses(nodes, covariates):
        return tuple(NodeStatus(node_id=n.node_id, covariates=covariates)
                     for n in nodes)

    events = [
        ("new nodes join the cluster",
         ValidationEvent(kind=EventKind.NODE_ADDED, nodes=tuple(fleet.nodes[:2]),
                         statuses=statuses(fleet.nodes[:2], fresh))),
        ("short job on fresh nodes",
         ValidationEvent(kind=EventKind.JOB_ALLOCATION,
                         nodes=tuple(fleet.nodes[2:6]),
                         statuses=statuses(fleet.nodes[2:6], fresh),
                         duration_hours=4.0)),
        ("long job on high-risk nodes",
         ValidationEvent(kind=EventKind.JOB_ALLOCATION,
                         nodes=tuple(fleet.nodes[6:10]),
                         statuses=statuses(fleet.nodes[6:10], scarred),
                         duration_hours=72.0)),
        ("customer incident reported",
         ValidationEvent(kind=EventKind.INCIDENT_REPORTED,
                         nodes=tuple(fleet.nodes[10:11]),
                         statuses=statuses(fleet.nodes[10:11], scarred))),
    ]

    print("\nReplaying orchestration events:\n")
    for label, event in events:
        outcome = system.handle(event)
        if outcome.skipped:
            p = outcome.selection.initial_probability
            print(f"* {label}\n    -> SKIPPED (joint incident probability "
                  f"{p:.3f} <= p0={selector.p0})")
        else:
            ran = outcome.report.benchmarks_run
            time_min = (outcome.selection.total_time_minutes
                        if outcome.selection else
                        sum(s.duration_minutes for s in full_suite()))
            print(f"* {label}\n    -> validated with {len(ran)} benchmarks "
                  f"(~{time_min:.0f} min), defects: "
                  f"{outcome.defective_node_ids or 'none'}")
    print(f"\nhandled {len(system.history)} events; coverage table now tracks "
          f"{len(selector.coverage.all_defects())} historical defects")


if __name__ == "__main__":
    main()
