#!/usr/bin/env python
"""Cluster build-out screening: the paper's deployment scenario (§5.4).

Simulates delivering a new GPU cluster: a larger fleet is screened with
the full benchmark set before hand-off to customers.  Prints the
per-benchmark defect shares and healthy-node repeatability -- the two
columns of the paper's Table 6 -- plus the overall defect ratio.

Run:  python examples/cluster_buildout.py [n_nodes]
"""

import sys


from repro import Validator, build_fleet, full_suite
from repro.benchsuite import SuiteRunner
from repro.core import pairwise_repeatability


def main(n_nodes: int = 250):
    print(f"Build-out screening of a {n_nodes}-VM cluster\n")
    fleet = build_fleet(n_nodes, seed=11)
    validator = Validator(full_suite(), runner=SuiteRunner(seed=3), alpha=0.95)

    # Criteria are learned offline on a sample of the build-out; the
    # whole fleet is then screened online.
    learning_sample = fleet.nodes[: min(100, n_nodes)]
    print(f"Learning criteria on {len(learning_sample)} nodes...")
    validator.learn_criteria(learning_sample)

    print(f"Screening all {n_nodes} nodes...\n")
    report = validator.validate(fleet.nodes)
    flagged = set(report.defective_nodes)

    # Repeatability among healthy nodes, per benchmark (first metric).
    healthy_nodes = [n for n in fleet.nodes if n.node_id not in flagged][:25]
    runner = SuiteRunner(seed=17)

    print(f"{'benchmark':<28} {'repeatability':>13} {'defects':>9}")
    print("-" * 54)
    by_benchmark = report.violations_by_benchmark()
    rows = []
    for spec in full_suite():
        share = len(by_benchmark.get(spec.name, ())) / n_nodes
        samples = [runner.run(spec, node).sample(spec.metrics[0].name)
                   for node in healthy_nodes]
        repeatability = pairwise_repeatability(samples)
        rows.append((spec.name, repeatability, share))
    for name, repeatability, share in sorted(rows, key=lambda r: -r[2]):
        if share > 0:
            print(f"{name:<28} {100 * repeatability:>12.2f}% {100 * share:>8.2f}%")
    print("-" * 54)
    print(f"total defective nodes: {len(flagged)}/{n_nodes} "
          f"({100 * len(flagged) / n_nodes:.2f}%; "
          f"paper reports 10.36% at Azure scale)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 250)
