#!/usr/bin/env python
"""The durable validation control plane (service layer over Figure 7).

Where ``selection_loop.py`` calls the Anubis facade synchronously, this
example runs the operational wrapper the paper deploys: events land in
a risk-prioritized queue (duplicates coalesce), a parallel pool
executes the selected benchmarks with per-benchmark timeouts, every
node walks the enforced lifecycle state machine, and the whole thing
journals to disk -- the second half of the script kills the service
and proves a fresh one recovers its exact state from the journal.

Run:  python examples/service_loop.py
"""

import tempfile

import numpy as np

from repro import (
    Anubis,
    PoolConfig,
    Selector,
    ServiceConfig,
    ValidationService,
    Validator,
    build_fleet,
    extract_status_samples,
    full_suite,
    generate_incident_trace,
)
from repro.benchsuite import SuiteRunner
from repro.core import NodeStatus
from repro.core.persistence import criteria_payload
from repro.core.system import EventKind, ValidationEvent
from repro.survival.exponential import ExponentialModel


def build_policy(seed=9):
    """Fresh policy stack: Validator criteria + exponential-risk Selector."""
    from repro.simulation import analytic_coverage_table, suite_durations

    trace = generate_incident_trace(100, 1200.0, seed=5)
    dataset = extract_status_samples(trace)
    model = ExponentialModel().fit(dataset)
    validator = Validator(full_suite(), runner=SuiteRunner(seed=seed))
    selector = Selector(model, analytic_coverage_table(full_suite()),
                        suite_durations(), p0=0.10)
    return Anubis(validator, selector), dataset


def main():
    fleet = build_fleet(16, seed=3)
    journal_dir = tempfile.mkdtemp(prefix="repro-service-")
    anubis, dataset = build_policy()
    print("Learning validation criteria on the fleet...")
    anubis.validator.learn_criteria(fleet.nodes[:8])

    config = ServiceConfig(pool=PoolConfig(max_workers=4,
                                           benchmark_timeout_seconds=10.0))
    service = ValidationService(anubis, fleet.nodes,
                                journal_dir=journal_dir, config=config)

    fresh = dataset.covariates[np.argmin(dataset.feature("incident_count"))]
    scarred = dataset.covariates[np.argmax(dataset.feature("incident_count"))]

    def statuses(nodes, covariates):
        return tuple(NodeStatus(node_id=n.node_id, covariates=covariates)
                     for n in nodes)

    def event(kind, nodes, covariates, duration=24.0):
        return ValidationEvent(kind=kind, nodes=tuple(nodes),
                               statuses=statuses(nodes, covariates),
                               duration_hours=duration)

    print("\nSubmitting an event burst (note the incident jumping the "
          "queue\nand the duplicate allocation coalescing):\n")
    service.submit(event(EventKind.JOB_ALLOCATION, fleet.nodes[0:4], fresh,
                         duration=4.0))
    service.submit(event(EventKind.JOB_ALLOCATION, fleet.nodes[4:8], scarred,
                         duration=72.0))
    service.submit(event(EventKind.JOB_ALLOCATION, fleet.nodes[0:4], fresh,
                         duration=12.0))  # coalesces into the first
    service.submit(event(EventKind.INCIDENT_REPORTED, fleet.nodes[8:9],
                         scarred))
    for entry in service.queue.pending():
        print(f"  queued #{entry.event_id}: {entry.event.kind.value:<18} "
              f"priority={entry.priority:.3f} "
              f"coalesced={entry.coalesced}")

    print("\nProcessing the two riskiest events, then killing the service:")
    for _ in range(2):
        result = service.tick()
        outcome = result.outcome
        verb = ("skipped by the Selector" if outcome.skipped else
                f"validated, quarantined: {result.quarantined or 'none'}")
        print(f"  event #{result.event_id} ({outcome.event.kind.value}) "
              f"-> {verb}")
    print(f"  still pending: {len(service.queue)} event(s)")

    print(f"\nRestarting from the journal at {journal_dir} with a fresh\n"
          "(criteria-free) policy stack:")
    reborn_anubis, _ = build_policy()
    recovered = ValidationService(reborn_anubis, fleet.nodes,
                                  journal_dir=journal_dir, config=config)
    same_criteria = (criteria_payload(recovered.anubis.validator)
                     == criteria_payload(service.anubis.validator))
    same_states = recovered.lifecycle.states() == service.lifecycle.states()
    print(f"  criteria recovered identically: {same_criteria}")
    print(f"  lifecycle recovered identically: {same_states}")
    print(f"  pending events recovered: {len(recovered.queue)}")

    print("\nDraining the recovered service (repairs advance each tick):")
    recovered.drain()
    print(recovered.metrics.format_table())
    counts = recovered.lifecycle.counts()
    print("\nlifecycle:", " ".join(f"{k}={v}" for k, v in counts.items()))

    # The measurement spine's per-stage counters ride along in the
    # facade's history summary -- one place to see how much execute /
    # sanitize / learn / score work the recovered service did.
    summary = recovered.anubis.history_summary()
    print("\nmeasurement spine (stage: runs, seconds):")
    if not summary["pipeline"]:
        print("  (no benchmark ran after recovery -- the Selector "
              "skipped the remaining events)")
    for stage, entry in summary["pipeline"].items():
        print(f"  {stage:<10} {int(entry['count']):6d} "
              f"{entry['seconds']:8.3f}s")


if __name__ == "__main__":
    main()
