#!/usr/bin/env python
"""Proactive validation vs. reactive troubleshooting (§5.2 headline).

Runs the 30-day cluster simulation under all four policies on the same
allocation trace and prints the Figure 8 / Table 4 comparison: average
node utilization, per-node validation time, MTBI and incident counts.

Run:  python examples/proactive_vs_reactive.py [n_nodes] [days]
"""

import sys

from repro import SimulationConfig, generate_allocation_trace, run_policy_comparison


def main(n_nodes: int = 48, days: int = 30):
    horizon = 24.0 * days
    print(f"Simulating {days} days on a {n_nodes}-node cluster "
          f"under four validation policies...\n")
    config = SimulationConfig(n_nodes=n_nodes, horizon_hours=horizon, seed=1)
    trace = generate_allocation_trace(horizon, jobs_per_hour=n_nodes / 48,
                                      max_job_nodes=max(2, n_nodes // 4),
                                      mean_duration_hours=18.0, seed=2)
    print(f"allocation trace: {len(trace)} jobs\n")

    comparison = run_policy_comparison(config, trace, p0=0.02)

    print(f"{'policy':<10} {'utilization':>12} {'MTBI (h)':>10} "
          f"{'validation (h)':>15} {'incidents/node':>15}")
    print("-" * 66)
    for name in ("absence", "full-set", "selector", "ideal"):
        result = comparison.results[name]
        print(f"{name:<10} {100 * result.average_utilization:>11.1f}% "
              f"{result.mtbi_hours:>10.1f} "
              f"{result.average_validation_hours:>15.2f} "
              f"{result.average_incidents:>15.2f}")
    print("-" * 66)

    selector = comparison.results["selector"]
    absence = comparison.results["absence"]
    full = comparison.results["full-set"]
    print(f"\nselector vs no-validation: "
          f"{selector.mtbi_hours / absence.mtbi_hours:.1f}x MTBI, "
          f"{selector.average_utilization / absence.average_utilization:.2f}x "
          f"utilization")
    saving = 1.0 - selector.average_validation_hours / full.average_validation_hours
    print(f"selector vs full-set:      {100 * saving:.1f}% less validation time, "
          f"{selector.mtbi_hours / full.mtbi_hours:.2f}x MTBI")
    print(f"(paper at Azure scale: 22.61x MTBI over no validation, "
          f"92.07% validation saving, 1.11x MTBI over full set)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    d = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    main(n, d)
