#!/usr/bin/env python
"""Networking validation on a fat-tree fabric (§2.2 + Appendix A).

Builds the paper's 24-node InfiniBand testbed shape, breaks redundant
ToR uplinks past the half-redundancy threshold, and shows:

1. the Figure 3 phenomenon -- concurrent 2-node all-reduce pairs
   crossing the degraded ToRs lose bandwidth while isolated runs look
   healthy;
2. the O(n)-round full pairwise scan (circle method) localizing a
   degraded HCA;
3. the O(1)-round topology-aware quick scan.

Run:  python examples/network_validation.py
"""

import numpy as np

from repro.analysis.plots import ascii_cdf
from repro.benchsuite.multinode import run_all_pair_scan
from repro.hardware import Node, defect_mode
from repro.netval import quick_scan_schedule, round_robin_schedule
from repro.topology import FatTree, FatTreeConfig, allreduce_pair_bandwidths


def build_testbed():
    return FatTree(FatTreeConfig(n_nodes=24, nodes_per_tor=4, tors_per_pod=3,
                                 uplinks_per_tor=20, redundant_uplinks=4))


def figure3_demo():
    print("=" * 64)
    print("1. Redundancy loss hides until traffic runs concurrently")
    print("=" * 64)
    tree = build_testbed()
    pairs = []
    for tor in range(0, tree.n_tors, 2):
        pairs.extend(zip(tree.nodes_in_tor(tor), tree.nodes_in_tor(tor + 1)))

    tree.fail_uplinks(0, 3)  # > half the redundancy broken
    tree.fail_uplinks(3, 3)

    alone = allreduce_pair_bandwidths(tree, pairs, concurrent=False, noise_cv=0.0)
    together = allreduce_pair_bandwidths(tree, pairs, concurrent=True,
                                         noise_cv=0.0)
    print(f"{'pair':<12} {'isolated GB/s':>14} {'concurrent GB/s':>16}")
    for a, t in zip(alone, together):
        marker = "  <-- congested" if t.congested else ""
        print(f"{str(a.pair):<12} {a.bandwidth_gbps:>14.1f} "
              f"{t.bandwidth_gbps:>16.1f}{marker}")
    print()
    print(ascii_cdf({"isolated": [a.bandwidth_gbps for a in alone],
                     "concurrent": [t.bandwidth_gbps for t in together]},
                    width=56, height=12,
                    x_label="2-node all-reduce bus bandwidth (GB/s), Fig 3 style"))
    print("\nRepairing ToR 0 and ToR 3 back to half redundancy...")
    tree.repair_uplinks(0, 1)
    tree.repair_uplinks(3, 1)
    repaired = allreduce_pair_bandwidths(tree, pairs, concurrent=True,
                                         noise_cv=0.0)
    print(f"all pairs congestion-free: {all(not r.congested for r in repaired)}\n")


def full_scan_demo():
    print("=" * 64)
    print("2. Full pairwise scan in O(n) rounds localizes a bad HCA")
    print("=" * 64)
    tree = build_testbed()
    rng = np.random.default_rng(0)
    nodes = [Node(node_id=f"n{i:02d}") for i in range(24)]
    nodes[13].apply_defect(defect_mode("ib_hca_degraded"), rng)

    rounds = round_robin_schedule(list(range(24)))
    print(f"scheduled {sum(len(r) for r in rounds)} pairs into "
          f"{len(rounds)} rounds of {len(rounds[0])} concurrent pairs")

    scan = run_all_pair_scan(tree, nodes, rng)
    medians = scan.node_median_bandwidth
    worst = sorted(medians, key=medians.get)[:3]
    print("three lowest median pair bandwidths:")
    for index in worst:
        print(f"  node {index:>2}: {medians[index]:.2f} GB/s"
              + ("   <-- injected defect" if index == 13 else ""))
    print()


def quick_scan_demo():
    print("=" * 64)
    print("3. Topology-aware quick scan: rounds independent of scale")
    print("=" * 64)
    for n_nodes in (24, 96, 384):
        tree = FatTree(FatTreeConfig(n_nodes=n_nodes, nodes_per_tor=4,
                                     tors_per_pod=3))
        rounds = quick_scan_schedule(tree)
        summary = ", ".join(f"{hop}-hop x{len(pairs)}"
                            for hop, pairs in sorted(rounds.items()))
        print(f"  {n_nodes:>4} nodes -> {len(rounds)} rounds ({summary})")


def main():
    figure3_demo()
    full_scan_demo()
    quick_scan_demo()


if __name__ == "__main__":
    main()
