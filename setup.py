"""Legacy setup shim.

The evaluation environment has no network access and no ``wheel``
package, so PEP 517 editable installs cannot build; this shim enables
``pip install -e . --no-use-pep517 --no-build-isolation``.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
